"""Parallel, memoized execution of design-space sweeps.

The paper's figures are large sweeps: every (application x capacity x
topology x gate x reorder) point runs the full compile->simulate pipeline.
This module adds the two throughput layers the sweep drivers share:

* :class:`ProgramCache` -- a compiled-program memo keyed by the *compile
  relevant* inputs: the circuit's structural fingerprint plus (topology,
  capacity, reorder, buffer, mapping, routing, lowering).  The two-qubit gate
  implementation is deliberately **not** part of the key: it changes only
  durations and fidelities, never the compiled operation sequence, which is
  exactly the sharing :func:`~repro.toolflow.runner.run_gate_variants`
  exploits for Figure 8.  With the cache, *every* sweep (capacity, topology,
  microarchitecture) shares compilations the same way -- including across
  separate sweeps in one session.
* :func:`run_tasks` -- a deterministic sweep executor.  ``jobs=1`` (the
  default) runs in-process against a shared cache; ``jobs>1`` fans tasks out
  to a ``ProcessPoolExecutor`` whose workers each keep a process-local cache
  (their cache/batch counters are merged back into the caller's cache so the
  CLI summary stays meaningful).  Results always come back in
  task-submission order, so the produced record list is byte-for-byte
  independent of the worker count.

Gate fan-outs (``SweepTask.gates``) are simulated through the batch engine
(:func:`repro.sim.batch.simulate_gate_variants`): one struct-of-arrays plan per
compiled program, one timeline walk per distinct duration vector, and a
reduced per-variant noise pass -- bit-identical to serial
:func:`~repro.sim.engine.simulate` (golden-tested).  Tasks that need a
per-operation timeline (``keep_timeline=True``) fall back to the serial
engine, which is the only path that materialises one.

Physical-model parameters are allowed to differ between cache hits: the
compiler never reads them (they only drive simulation), which is asserted by
the toolflow tests.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from dataclasses import replace

from repro.analyze.runtime import checks_enabled, verify_or_raise
from repro.compiler.compile import CompilerOptions, compile_circuit
from repro.hardware.device import QCCDDevice
from repro.models.gate_times import GateImplementation
from repro.io.fingerprint import circuit_fingerprint
from repro.ir.circuit import Circuit
from repro.isa.program import QCCDProgram
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    current_span_ref,
    current_tracer,
    enable_tracing,
    span,
)
from repro.sim.batch import simulate_gate_variants
from repro.sim.engine import simulate
from repro.toolflow.config import ArchitectureConfig
from repro.toolflow.runner import ExperimentRecord


class ProgramCache:
    """Memo of compiled programs, shared across sweep points.

    The cached device is the one the program was compiled for; requests for a
    different gate implementation receive ``device.with_gate(...)`` copies,
    mirroring :func:`~repro.toolflow.runner.run_gate_variants`.

    Counters live in a :class:`~repro.obs.metrics.MetricsRegistry` (one per
    cache by default, so separate sweeps count independently) under the
    names ``cache.hits``, ``cache.misses`` and ``cache.batch.*`` -- the
    same names worker telemetry and the ``--trace`` manifest report.
    :meth:`stats` presents them under the legacy flat keys, so the printed
    sweep summary is byte-stable.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._programs: Dict[Tuple, Tuple[QCCDProgram, QCCDDevice]] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("cache.hits")
        self._misses = self.metrics.counter("cache.misses")
        #: Batch-simulation activity against programs of this cache, in the
        #: key scheme of :func:`repro.sim.batch.simulate_batch`'s ``stats``
        #: parameter (``plans``/``plan_reuses``/``variants``/``timelines``/
        #: ``timeline_hits``) -- a dict facade over ``cache.batch.*``
        #: registry counters.
        self.batch = self.metrics.dict_view("cache.batch.")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def __len__(self) -> int:
        return len(self._programs)

    @staticmethod
    def key_for(circuit: Circuit, config: ArchitectureConfig,
                options: Optional[CompilerOptions] = None) -> Tuple:
        """The compile-relevant identity of a sweep point.

        Excludes the gate implementation (it does not affect compilation) and
        the physical model parameters (the compiler never reads them).
        """

        options = options or CompilerOptions()
        return (
            circuit_fingerprint(circuit),
            config.topology,
            config.trap_capacity,
            config.reorder,
            config.buffer_ions,
            options.mapping,
            options.routing,
            options.lower_to_native,
        )

    def get_or_compile(self, circuit: Circuit, config: ArchitectureConfig,
                       options: Optional[CompilerOptions] = None,
                       ) -> Tuple[QCCDProgram, QCCDDevice]:
        """Return the compiled ``(program, device)`` for a sweep point.

        On a hit the stored program is returned with a device carrying the
        requested gate implementation; on a miss the circuit is compiled and
        stored.
        """

        key = self.key_for(circuit, config, options)
        entry = self._programs.get(key)
        if entry is not None:
            self._hits.inc()
            program, device = entry
            # The cached program is valid for any gate implementation and any
            # physical-model parameters (neither affects compilation), but the
            # *device* handed back must carry the requested ones -- they drive
            # the simulation.
            gate = GateImplementation.from_name(config.gate)
            if device.gate is not gate or device.model != config.model:
                device = replace(device, gate=gate, model=config.model, name="")
            return program, device
        self._misses.inc()
        device = config.build_device(circuit.num_qubits)
        program = compile_circuit(circuit, device, options)
        self._programs[key] = (program, device)
        return program, device

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters, distinct compilations held, batch activity.

        The ``batch_*`` keys count batch-engine work done against programs
        compiled through this cache: plans built (one per program) versus
        reused across tasks, variants evaluated, and timeline walks performed
        versus skipped thanks to duration-vector dedup.
        """

        stats = {"hits": self.hits, "misses": self.misses,
                 "entries": len(self._programs)}
        batch = self.batch
        stats["batch_plans"] = batch.get("plans", 0)
        stats["batch_plan_reuses"] = batch.get("plan_reuses", 0)
        stats["batch_variants"] = batch.get("variants", 0)
        stats["batch_timelines"] = batch.get("timelines", 0)
        stats["batch_timeline_hits"] = batch.get("timeline_hits", 0)
        return stats

    def counters_delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter movement since a previous :meth:`stats` snapshot.

        ``entries`` is excluded: it is the size of this process's memo, not a
        monotone counter, so deltas across processes are not meaningful.
        """

        now = self.stats()
        return {key: now[key] - before.get(key, 0)
                for key in now if key != "entries"}

    def merge_counters(self, delta: Dict[str, int]) -> None:
        """Fold a :meth:`counters_delta` from a pool worker into this cache.

        Lets ``jobs>1`` sweeps report aggregate cache/batch activity even
        though worker processes keep private memos (their *entries* stay
        process-local and are not merged).
        """

        self._hits.inc(delta.get("hits", 0))
        self._misses.inc(delta.get("misses", 0))
        batch = self.batch
        for stat_key, raw_key in (("batch_plans", "plans"),
                                  ("batch_plan_reuses", "plan_reuses"),
                                  ("batch_variants", "variants"),
                                  ("batch_timelines", "timelines"),
                                  ("batch_timeline_hits", "timeline_hits")):
            value = delta.get(stat_key, 0)
            if value:
                batch[raw_key] = batch.get(raw_key, 0) + value


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: compile once, simulate one or more gates.

    ``gates`` is ``None`` for a plain :func:`run_experiment`-style point; a
    tuple of gate implementation names produces one record per gate from the
    single compilation (the Figure 8 fan-out).
    """

    circuit: Circuit
    config: ArchitectureConfig
    gates: Optional[Tuple[str, ...]] = None
    options: Optional[CompilerOptions] = None
    keep_timeline: bool = False


def execute_task(task: SweepTask, cache: ProgramCache) -> List[ExperimentRecord]:
    """Run one task against ``cache``; mirrors the serial runner drivers.

    Every record carries ``wall_s``, the wall-clock cost of producing it: its
    simulation share plus an even share of the task's compile time (zero on a
    cache hit).  The DSE store persists these timings, which is what drives
    ``dse status --eta`` and the dispatcher's progress watch.

    Gate fan-outs run through :func:`repro.sim.batch.simulate_gate_variants`
    -- one shared plan/timeline pass for the whole ``gates`` tuple,
    bit-identical to the per-gate serial loop -- and each record's ``wall_s``
    is an even
    apportionment of the batch's measured wall time.  ``keep_timeline=True``
    falls back to serial :func:`~repro.sim.engine.simulate`, the only engine
    that materialises per-operation timelines.
    """

    with span("sweep.task", app=task.circuit.name,
              gates=len(task.gates) if task.gates else 1):
        return _execute_task(task, cache)


def _execute_task(task: SweepTask, cache: ProgramCache) -> List[ExperimentRecord]:
    compile_start = perf_counter()
    program, device = cache.get_or_compile(task.circuit, task.config, task.options)
    if checks_enabled():
        # Covers the cache-hit path (a fresh compile already verified); the
        # per-program memo makes repeat hits free.
        verify_or_raise(program, device)
    compile_s = perf_counter() - compile_start
    program_size = len(program)
    num_shuttles = program.num_shuttles
    records: List[ExperimentRecord] = []
    if task.gates is None:
        sim_start = perf_counter()
        result = simulate(program, device, keep_timeline=task.keep_timeline)
        sim_s = perf_counter() - sim_start
        records.append(ExperimentRecord(
            application=task.circuit.name,
            config=task.config,
            result=result,
            program_size=program_size,
            num_shuttles=num_shuttles,
            wall_s=compile_s + sim_s,
        ))
        return records
    compile_share = compile_s / len(task.gates)
    if task.keep_timeline:
        for gate in task.gates:
            variant_device = device.with_gate(gate)
            sim_start = perf_counter()
            result = simulate(program, variant_device, keep_timeline=True)
            sim_s = perf_counter() - sim_start
            records.append(ExperimentRecord(
                application=task.circuit.name,
                config=task.config.with_updates(gate=gate),
                result=result,
                program_size=program_size,
                num_shuttles=num_shuttles,
                wall_s=compile_share + sim_s,
            ))
        return records
    sim_start = perf_counter()
    results = simulate_gate_variants(program, device, task.gates,
                                     stats=cache.batch)
    sim_share = (perf_counter() - sim_start) / len(task.gates)
    for gate, result in zip(task.gates, results):
        records.append(ExperimentRecord(
            application=task.circuit.name,
            config=task.config.with_updates(gate=gate),
            result=result,
            program_size=program_size,
            num_shuttles=num_shuttles,
            wall_s=compile_share + sim_share,
        ))
    return records


# ---------------------------------------------------------------------------
# Worker-side state for the process pool.  Each worker process lazily creates
# one cache and reuses it for every task it receives, so compilations are
# shared within a worker even though processes cannot share the parent cache.
# ---------------------------------------------------------------------------
_WORKER_CACHE: Optional[ProgramCache] = None


def _pool_tracer_init(trace_id: Optional[str],
                      parent_ref: Optional[str]) -> None:
    """Pool-child initializer: join the parent's trace, if it has one.

    Runs once per worker process.  When the parent traced the sweep, every
    child arms a tracer under the same root ``trace_id`` with the parent's
    open span as its cross-process ``parent_ref`` -- so ``sweep.task``
    spans executed in pool children appear in the merged trace instead of
    silently vanishing into untraced processes.
    """

    if trace_id is not None:
        enable_tracing(trace_id=trace_id, parent_ref=parent_ref)


def _worker_execute(task: SweepTask,
                    ) -> Tuple[List[ExperimentRecord], Dict[str, int],
                               Optional[List[Dict[str, object]]]]:
    """Execute one task in a pool worker.

    Returns the records, the worker cache's counter movement for this task
    (so the parent process can aggregate cache/batch statistics across
    workers; the memo itself stays process-local), and -- when the pool
    initializer armed a tracer -- the spans this task produced, drained
    into the self-contained shard schema so the parent can adopt them.
    """

    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = ProgramCache()
    before = _WORKER_CACHE.stats()
    records = execute_task(task, _WORKER_CACHE)
    spans: Optional[List[Dict[str, object]]] = None
    tracer = current_tracer()
    if tracer is not None and (tracer.spans or tracer.foreign):
        from repro.obs.distributed import drain_records

        spans = drain_records(tracer)
    return records, _WORKER_CACHE.counters_delta(before), spans


def iter_tasks(tasks: Sequence[SweepTask], *, jobs: int = 1,
               cache: Optional[ProgramCache] = None):
    """Execute sweep ``tasks``, yielding per-task record lists in task order.

    The streaming counterpart of :func:`run_tasks`: each task's records are
    yielded as soon as that task (and every task before it) has finished, so
    consumers can checkpoint incrementally -- the DSE experiment store
    persists each design point the moment it completes, which is what makes
    killed sweeps resumable at point granularity.

    When the parent has tracing enabled, pool children join the same trace
    (root ``trace_id`` + the parent's open span as ``parent_ref``) through
    the pool initializer and ship their span records home with each task's
    results, so a ``--jobs N`` sweep traces its ``sweep.task`` spans just
    like a serial one.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) executes serially in-process --
        no pickling, shared ``cache``.  Larger values fan out to a process
        pool; yield order is still the submission order, so results are
        deterministic regardless of ``jobs``.
    cache:
        Compiled-program cache for the serial path (one is created when not
        given).  Pool workers always use process-local caches -- the
        parameter primes nothing across processes by design -- but their
        hit/miss and batch counters are merged back into ``cache`` as each
        task's records are yielded, so a summary printed from it covers the
        whole run regardless of ``jobs``.
    """

    tasks = list(tasks)
    if jobs < 1:
        raise ValueError("jobs must be a positive integer")
    if jobs == 1 or len(tasks) <= 1:
        cache = cache if cache is not None else ProgramCache()
        for task in tasks:
            yield execute_task(task, cache)
        return
    tracer = current_tracer()
    initargs = ((tracer.trace_id, current_span_ref())
                if tracer is not None else (None, None))
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks)),
                             initializer=_pool_tracer_init,
                             initargs=initargs) as pool:
        chunksize = max(1, len(tasks) // (4 * jobs))
        for records, delta, spans in pool.map(_worker_execute, tasks,
                                              chunksize=chunksize):
            if cache is not None:
                cache.merge_counters(delta)
            if spans and tracer is not None:
                from repro.obs.distributed import adopt_exported

                adopt_exported(tracer, spans)
            yield records


def run_tasks(tasks: Sequence[SweepTask], *, jobs: int = 1,
              cache: Optional[ProgramCache] = None) -> List[List[ExperimentRecord]]:
    """Execute sweep ``tasks``, returning per-task record lists in task order.

    See :func:`iter_tasks` (this is its materialised form).
    """

    return list(iter_tasks(tasks, jobs=jobs, cache=cache))


def flatten(per_task_records: List[List[ExperimentRecord]]) -> List[ExperimentRecord]:
    """Concatenate per-task record lists into one flat record list."""

    return [record for records in per_task_records for record in records]


def shard_worker(store_dir, *, owner: Optional[str] = None,
                 jobs: Optional[int] = None) -> Dict[str, object]:
    """Entry point for one dispatched DSE worker process.

    This is what ``python -m repro dse worker --store DIR`` (and the
    dispatchers' locally spawned subprocesses) execute: read the dispatch
    manifest from the store directory, then lease work one unit at a time
    -- static shards from the :class:`~repro.dse.dispatch.ShardLedger`, or
    proposal batches from the adaptive
    :class:`~repro.dse.adaptive.protocol.ProposalLedger` when the manifest
    declares ``mode: "adaptive"`` -- evaluating each with lease-renewal
    heartbeats and marking it done, until the run completes.  All
    coordination logic lives in :mod:`repro.dse.dispatch` and
    :mod:`repro.dse.adaptive.protocol`; this function is the process-level
    entry so every worker, local or remote, starts the same way.

    Returns the worker summary of :func:`repro.dse.dispatch.run_worker`.
    """

    # Imported lazily: repro.dse.runner imports this module, so a top-level
    # import would be circular.
    from repro.dse.dispatch import run_worker

    return run_worker(store_dir, owner=owner, jobs=jobs)

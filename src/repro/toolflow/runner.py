"""Compile-and-simulate drivers.

:func:`run_experiment` evaluates one (application, architecture) pair and
returns an :class:`ExperimentRecord`.  :func:`run_gate_variants` exploits the
fact that the two-qubit gate implementation does not change the compiled
operation sequence (only its durations and fidelities), so one compilation can
be simulated under AM1, AM2, PM and FM -- this is how Figure 8's 288 points
are produced from 72 compilations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.compiler.compile import CompilerOptions, compile_circuit
from repro.hardware.device import QCCDDevice
from repro.ir.circuit import Circuit
from repro.isa.program import QCCDProgram
from repro.sim.batch import simulate_gate_variants
from repro.sim.engine import simulate
from repro.sim.results import SimulationResult
from repro.toolflow.config import ArchitectureConfig


@dataclass(frozen=True)
class ExperimentRecord:
    """One evaluated design point."""

    application: str
    config: ArchitectureConfig
    result: SimulationResult
    program_size: int
    num_shuttles: int
    #: Wall-clock seconds spent producing this record (compile share plus its
    #: simulation), measured by the sweep executor.  ``None`` when the record
    #: was produced by an untimed path.  Excluded from equality and from
    #: ``as_row()``: the timing describes the run, not the design point, so
    #: report tables and golden outputs never depend on it.
    wall_s: Optional[float] = field(default=None, compare=False)

    @property
    def fidelity(self) -> float:
        """Application reliability."""

        return self.result.fidelity

    @property
    def duration_seconds(self) -> float:
        """Application run time in seconds."""

        return self.result.duration_seconds

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary used by report tables.

        The row is assembled once per record and memoised (filter helpers
        like :func:`~repro.toolflow.sweep.select` call this repeatedly over
        large record lists); callers receive a fresh copy they may mutate.
        """

        cached = self.__dict__.get("_row_cache")
        if cached is None:
            cached = {
                "application": self.application,
                "topology": self.config.topology,
                "capacity": self.config.trap_capacity,
                "gate": self.config.gate,
                "reorder": self.config.reorder,
                "buffer": self.config.buffer_ions,
                "program_ops": self.program_size,
                "shuttles": self.num_shuttles,
            }
            cached.update(self.result.as_dict())
            # Frozen dataclass: store through the instance dict directly.
            self.__dict__["_row_cache"] = cached
        return dict(cached)


def compile_for(circuit: Circuit, config: ArchitectureConfig,
                options: Optional[CompilerOptions] = None) -> tuple:
    """Compile ``circuit`` for ``config``; returns ``(program, device)``."""

    device = config.build_device(circuit.num_qubits)
    program = compile_circuit(circuit, device, options)
    return program, device


def run_experiment(circuit: Circuit, config: ArchitectureConfig, *,
                   options: Optional[CompilerOptions] = None,
                   keep_timeline: bool = False) -> ExperimentRecord:
    """Compile and simulate one application on one candidate architecture."""

    program, device = compile_for(circuit, config, options)
    result = simulate(program, device, keep_timeline=keep_timeline)
    return ExperimentRecord(
        application=circuit.name,
        config=config,
        result=result,
        program_size=len(program),
        num_shuttles=program.num_shuttles,
    )


def run_gate_variants(circuit: Circuit, config: ArchitectureConfig,
                      gates: Iterable[str] = ("AM1", "AM2", "PM", "FM"), *,
                      options: Optional[CompilerOptions] = None) -> Dict[str, ExperimentRecord]:
    """Evaluate several gate implementations from a single compilation.

    The compiled program depends on topology, capacity and reordering method
    but not on the MS pulse-modulation scheme, so the program is compiled once
    (under ``config``) and simulated for every entry of ``gates`` through the
    batch engine (:func:`repro.sim.batch.simulate_gate_variants`): one shared
    timeline pass per distinct duration vector, bit-identical to simulating
    each variant serially.
    """

    program, device = compile_for(circuit, config, options)
    gates = tuple(gates)
    results = simulate_gate_variants(program, device, gates)
    records: Dict[str, ExperimentRecord] = {}
    for gate, result in zip(gates, results):
        records[gate] = ExperimentRecord(
            application=circuit.name,
            config=config.with_updates(gate=gate),
            result=result,
            program_size=len(program),
            num_shuttles=program.num_shuttles,
        )
    return records


def simulate_program(program: QCCDProgram, device: QCCDDevice) -> SimulationResult:
    """Thin wrapper kept for API symmetry with :func:`run_experiment`."""

    return simulate(program, device)

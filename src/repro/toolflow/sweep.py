"""Parameter sweeps over the QCCD design space.

The paper's sweep axes -- trap capacity, communication topology and
microarchitecture (gate implementation x reordering method) -- are expressed
as :class:`~repro.dse.space.DesignSpace` specs and executed through the
design-space exploration engine (:mod:`repro.dse`): every sweep routes its
points through an :class:`~repro.dse.store.ExperimentStore` (an ephemeral
in-memory one by default), so passing a persistent ``store`` makes any sweep
resumable and dedupes design points shared between figures.  Execution still
fans out through :mod:`repro.toolflow.parallel`, so ``jobs`` and ``cache``
behave exactly as before and each sweep returns a flat record list in a
deterministic order that is independent of the worker count.

Records are :class:`~repro.toolflow.runner.ExperimentRecord` when computed in
this process and interchangeable :class:`~repro.dse.store.CachedRecord` views
when replayed from a persistent store; both carry bit-identical metrics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.ir.circuit import Circuit
from repro.toolflow.config import ArchitectureConfig
from repro.toolflow.parallel import ProgramCache
from repro.toolflow.runner import ExperimentRecord

#: Capacities evaluated in the paper's figures.
PAPER_CAPACITIES = (14, 18, 22, 26, 30, 34)

#: Gate implementations evaluated in Figure 8.
PAPER_GATES = ("AM1", "AM2", "PM", "FM")

#: Reorder methods evaluated in Figure 8.
PAPER_REORDERS = ("GS", "IS")


def _run_space(circuits: Dict[str, Circuit], space, *, jobs: int,
               cache: Optional[ProgramCache], store) -> List[ExperimentRecord]:
    """Evaluate a space over pre-built suite circuits, in enumeration order."""

    from repro.dse.runner import DSERunner

    runner = DSERunner(space, store=store, circuits=circuits, jobs=jobs,
                       cache=cache)
    return runner.evaluate_space()


def sweep_capacity(circuits: Dict[str, Circuit],
                   capacities: Sequence[int] = PAPER_CAPACITIES,
                   base: Optional[ArchitectureConfig] = None, *,
                   jobs: int = 1,
                   cache: Optional[ProgramCache] = None,
                   store=None) -> List[ExperimentRecord]:
    """Sweep the trap capacity for every application (Figure 6 axis)."""

    from repro.dse.space import DesignSpace

    base = base or ArchitectureConfig()
    space = DesignSpace(
        apps=tuple(circuits),
        capacities=tuple(capacities),
        topologies=(base.topology,),
        gates=(base.gate,),
        reorders=(base.reorder,),
        buffers=(base.buffer_ions,),
        model=base.model,
    )
    return _run_space(circuits, space, jobs=jobs, cache=cache, store=store)


def sweep_topologies(circuits: Dict[str, Circuit],
                     topologies: Sequence[str] = ("L6", "G2x3"),
                     capacities: Sequence[int] = PAPER_CAPACITIES,
                     base: Optional[ArchitectureConfig] = None, *,
                     jobs: int = 1,
                     cache: Optional[ProgramCache] = None,
                     store=None) -> List[ExperimentRecord]:
    """Sweep topology x capacity for every application (Figure 7 axes)."""

    from repro.dse.space import DesignSpace

    base = base or ArchitectureConfig()
    space = DesignSpace(
        apps=tuple(circuits),
        capacities=tuple(capacities),
        topologies=tuple(topologies),
        gates=(base.gate,),
        reorders=(base.reorder,),
        buffers=(base.buffer_ions,),
        model=base.model,
    )
    return _run_space(circuits, space, jobs=jobs, cache=cache, store=store)


def sweep_microarchitecture(circuits: Dict[str, Circuit],
                            capacities: Sequence[int] = PAPER_CAPACITIES,
                            gates: Iterable[str] = PAPER_GATES,
                            reorders: Iterable[str] = PAPER_REORDERS,
                            base: Optional[ArchitectureConfig] = None, *,
                            jobs: int = 1,
                            cache: Optional[ProgramCache] = None,
                            store=None) -> List[ExperimentRecord]:
    """Sweep gate implementation x reordering x capacity (Figure 8 axes).

    The compiled program is shared across gate implementations for each
    (application, capacity, reorder) triple: the space enumerates gates
    innermost, which the DSE runner folds into single-compilation tasks that
    the batch engine (:func:`repro.sim.batch.simulate_batch`) evaluates in
    one shared pass per compilation.
    """

    from repro.dse.space import DesignSpace

    base = base or ArchitectureConfig()
    space = DesignSpace(
        apps=tuple(circuits),
        capacities=tuple(capacities),
        topologies=(base.topology,),
        gates=tuple(gates),
        reorders=tuple(reorders),
        buffers=(base.buffer_ions,),
        model=base.model,
        # Figure 8 enumerates reorder-major (GS block then IS block), with
        # the gate variants of one compilation innermost.
        order=("topology", "reorder", "capacity", "buffer", "qubits", "app",
               "gate"),
    )
    return _run_space(circuits, space, jobs=jobs, cache=cache, store=store)


def records_to_rows(records: Iterable[ExperimentRecord]) -> List[Dict[str, object]]:
    """Flatten records into dictionaries (for CSV-style reporting)."""

    return [record.as_row() for record in records]


def select(records: Iterable[ExperimentRecord], **criteria) -> List[ExperimentRecord]:
    """Filter records by application/config attributes.

    Example: ``select(records, application="qft64", capacity=22)``.
    """

    items = tuple(criteria.items())
    matched = []
    for record in records:
        row = record.as_row()
        if all(row.get(key) == value for key, value in items):
            matched.append(record)
    return matched

"""Parameter sweeps over the QCCD design space.

Thin, composable wrappers around the sweep executor in
:mod:`repro.toolflow.parallel` that enumerate the paper's sweep axes: trap
capacity, communication topology and microarchitecture (gate implementation x
reordering method).  Each sweep returns a flat list of
:class:`~repro.toolflow.runner.ExperimentRecord` in a deterministic order
that is independent of the worker count.

All three sweeps accept ``jobs`` (worker processes; 1 = serial) and ``cache``
(a :class:`~repro.toolflow.parallel.ProgramCache` reused across calls so
overlapping sweeps -- e.g. Figure 6 and the L6 half of Figure 7 -- share
compilations).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.ir.circuit import Circuit
from repro.toolflow.config import ArchitectureConfig
from repro.toolflow.parallel import ProgramCache, SweepTask, flatten, run_tasks
from repro.toolflow.runner import ExperimentRecord

#: Capacities evaluated in the paper's figures.
PAPER_CAPACITIES = (14, 18, 22, 26, 30, 34)

#: Gate implementations evaluated in Figure 8.
PAPER_GATES = ("AM1", "AM2", "PM", "FM")

#: Reorder methods evaluated in Figure 8.
PAPER_REORDERS = ("GS", "IS")


def sweep_capacity(circuits: Dict[str, Circuit],
                   capacities: Sequence[int] = PAPER_CAPACITIES,
                   base: Optional[ArchitectureConfig] = None, *,
                   jobs: int = 1,
                   cache: Optional[ProgramCache] = None) -> List[ExperimentRecord]:
    """Sweep the trap capacity for every application (Figure 6 axis)."""

    base = base or ArchitectureConfig()
    tasks = [
        SweepTask(circuit, base.with_updates(trap_capacity=capacity))
        for capacity in capacities
        for circuit in circuits.values()
    ]
    return flatten(run_tasks(tasks, jobs=jobs, cache=cache))


def sweep_topologies(circuits: Dict[str, Circuit],
                     topologies: Sequence[str] = ("L6", "G2x3"),
                     capacities: Sequence[int] = PAPER_CAPACITIES,
                     base: Optional[ArchitectureConfig] = None, *,
                     jobs: int = 1,
                     cache: Optional[ProgramCache] = None) -> List[ExperimentRecord]:
    """Sweep topology x capacity for every application (Figure 7 axes)."""

    base = base or ArchitectureConfig()
    tasks = [
        SweepTask(circuit, base.with_updates(topology=topology, trap_capacity=capacity))
        for topology in topologies
        for capacity in capacities
        for circuit in circuits.values()
    ]
    return flatten(run_tasks(tasks, jobs=jobs, cache=cache))


def sweep_microarchitecture(circuits: Dict[str, Circuit],
                            capacities: Sequence[int] = PAPER_CAPACITIES,
                            gates: Iterable[str] = PAPER_GATES,
                            reorders: Iterable[str] = PAPER_REORDERS,
                            base: Optional[ArchitectureConfig] = None, *,
                            jobs: int = 1,
                            cache: Optional[ProgramCache] = None) -> List[ExperimentRecord]:
    """Sweep gate implementation x reordering x capacity (Figure 8 axes).

    The compiled program is shared across gate implementations for each
    (application, capacity, reorder) triple.
    """

    base = base or ArchitectureConfig()
    gates = tuple(gates)
    tasks = [
        SweepTask(circuit,
                  base.with_updates(trap_capacity=capacity, reorder=reorder),
                  gates=gates)
        for reorder in reorders
        for capacity in capacities
        for circuit in circuits.values()
    ]
    return flatten(run_tasks(tasks, jobs=jobs, cache=cache))


def records_to_rows(records: Iterable[ExperimentRecord]) -> List[Dict[str, object]]:
    """Flatten records into dictionaries (for CSV-style reporting)."""

    return [record.as_row() for record in records]


def select(records: Iterable[ExperimentRecord], **criteria) -> List[ExperimentRecord]:
    """Filter records by application/config attributes.

    Example: ``select(records, application="qft64", capacity=22)``.
    """

    items = tuple(criteria.items())
    matched = []
    for record in records:
        row = record.as_row()
        if all(row.get(key) == value for key, value in items):
            matched.append(record)
    return matched

"""Harnesses for the paper's tables.

* :func:`table1` -- shuttling primitive times (paper Table I).
* :func:`table2` -- the benchmark suite characteristics (paper Table II).

Both return row dictionaries and have ``format_*`` companions that render the
aligned text printed by the examples and benchmark harnesses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.suite import application_summary, table2_suite
from repro.ir.circuit import Circuit
from repro.models.params import ShuttleTimes
from repro.models.shuttle_times import format_table1, operation_times


def table1(params: Optional[ShuttleTimes] = None) -> Dict[str, float]:
    """Table I rows: shuttling operation -> duration in microseconds."""

    return operation_times(params)


def format_table1_text(params: Optional[ShuttleTimes] = None) -> str:
    """Table I rendered as aligned text."""

    return format_table1(params)


def table2(circuits: Optional[Dict[str, Circuit]] = None) -> List[Dict[str, object]]:
    """Table II rows for a benchmark suite (defaults to the full-scale suite)."""

    return application_summary(circuits)


def format_table2_text(circuits: Optional[Dict[str, Circuit]] = None) -> str:
    """Table II rendered as aligned text, with the paper's counts alongside."""

    rows = table2(circuits if circuits is not None else table2_suite())
    header = (f"{'Application':<12} {'Qubits':>6} {'2Q gates':>9} "
              f"{'Paper qubits':>13} {'Paper 2Q':>9}  Communication pattern")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['application']:<12} {row['qubits']:>6} {row['two_qubit_gates']:>9} "
            f"{row['paper_qubits']:>13} {row['paper_two_qubit_gates']:>9}  "
            f"{row['communication_pattern']}"
        )
    return "\n".join(lines)

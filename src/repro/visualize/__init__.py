"""Text rendering of results: ASCII charts and experiment reports.

The toolflow runs offline with no plotting dependencies; these helpers render
series as ASCII charts and whole experiments as text reports, which is what
the examples print and what EXPERIMENTS.md records.
"""

from repro.visualize.ascii_chart import ascii_line_chart, ascii_bar_chart
from repro.visualize.report import experiment_report, device_report

__all__ = [
    "ascii_line_chart",
    "ascii_bar_chart",
    "experiment_report",
    "device_report",
]

"""Minimal ASCII charts for terminal output.

Only two chart types are needed by the examples: a multi-series line chart
over a shared x axis (the capacity sweeps) and a horizontal bar chart (per-app
comparisons).  Both degrade gracefully for constant or empty series.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_MARKERS = "ox+*#@%&"

#: Sparkline intensity ramp, lowest to highest.  Pure ASCII on purpose:
#: ``repro dse top`` frames are byte-compared in tests and may land in CI
#: logs, where unicode block elements render unpredictably.
_SPARK_LEVELS = " .:-=+*#@"


def _scale(value: float, low: float, high: float, width: int) -> int:
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return int(round(fraction * (width - 1)))


def ascii_line_chart(x_values: Sequence[float],
                     series: Dict[str, Sequence[float]],
                     width: int = 60, height: int = 16,
                     title: str = "") -> str:
    """Render ``{label: ys}`` over ``x_values`` as an ASCII scatter/line chart."""

    labels = [label for label, values in series.items() if values]
    if not labels or not x_values:
        return f"{title}\n(no data)" if title else "(no data)"

    all_values = [value for label in labels for value in series[label] if value is not None]
    low, high = min(all_values), max(all_values)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    for series_index, label in enumerate(labels):
        marker = _MARKERS[series_index % len(_MARKERS)]
        values = series[label]
        for point_index, value in enumerate(values):
            if value is None:
                continue
            column = _scale(point_index, 0, max(len(values) - 1, 1), width)
            row = height - 1 - _scale(value, low, high, height)
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{high:.3g}".rjust(10))
    for row in grid:
        lines.append(" " * 10 + "|" + "".join(row))
    lines.append(f"{low:.3g}".rjust(10) + " +" + "-" * width)
    lines.append(" " * 12 + f"x: {x_values[0]} .. {x_values[-1]}")
    legend = "  ".join(f"{_MARKERS[index % len(_MARKERS)]}={label}"
                       for index, label in enumerate(labels))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def ascii_sparkline(values: Sequence[float]) -> str:
    """Render a sequence as a one-character-per-value intensity sparkline.

    Scaled against the max of the sequence (zero maps to a blank), so a
    constant nonzero series renders at full intensity -- the shape of the
    series matters here, not its absolute level.
    """

    if not values:
        return ""
    largest = max(values)
    if largest <= 0:
        return _SPARK_LEVELS[0] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[0] if value <= 0 else
        _SPARK_LEVELS[max(1, min(top, int(round(value / largest * top))))]
        for value in values)


def ascii_bar_chart(values: Dict[str, float], width: int = 50,
                    title: str = "", value_format: str = "{:.4g}") -> str:
    """Render ``{label: value}`` as a horizontal bar chart."""

    if not values:
        return f"{title}\n(no data)" if title else "(no data)"
    label_width = max(len(label) for label in values)
    largest = max(abs(value) for value in values.values()) or 1.0
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, int(round(abs(value) / largest * width))) if value else ""
        lines.append(f"{label:<{label_width}} | {bar} {value_format.format(value)}")
    return "\n".join(lines)

"""Text reports for devices and experiment records."""

from __future__ import annotations

from typing import Iterable, List

from repro.hardware.device import QCCDDevice
from repro.toolflow.runner import ExperimentRecord


def device_report(device: QCCDDevice) -> str:
    """Multi-line description of a candidate architecture."""

    topology = device.topology
    lines = [device.describe(), ""]
    lines.append(f"Traps ({topology.num_traps}):")
    for trap in topology.traps:
        lines.append(f"  {trap.name}: capacity {trap.capacity}")
    if topology.junctions:
        lines.append(f"Junctions ({len(topology.junctions)}):")
        for junction in topology.junctions:
            lines.append(f"  {junction.name}: {junction.kind} ({junction.degree}-way)")
    lines.append(f"Segments ({len(topology.segments)}):")
    for segment in topology.segments:
        lines.append(f"  {segment.name}: {segment.endpoint_a} <-> {segment.endpoint_b}")
    return "\n".join(lines)


def experiment_report(records: Iterable[ExperimentRecord]) -> str:
    """Aligned table of experiment records (one row per design point)."""

    records = list(records)
    if not records:
        return "(no experiments)"
    header = (f"{'application':<16} {'topology':<7} {'cap':>4} {'gate':>4} {'reorder':>7} "
              f"{'time (s)':>10} {'fidelity':>10} {'shuttles':>9} {'max n̄':>8}")
    lines: List[str] = [header, "-" * len(header)]
    for record in records:
        result = record.result
        lines.append(
            f"{record.application:<16} {record.config.topology:<7} "
            f"{record.config.trap_capacity:>4} {record.config.gate:>4} "
            f"{record.config.reorder:>7} {result.duration_seconds:>10.4f} "
            f"{result.fidelity:>10.3e} {record.num_shuttles:>9} "
            f"{result.max_motional_energy:>8.2f}"
        )
    return "\n".join(lines)

"""Shared pytest fixtures.

Fixtures build small, fast device/circuit instances; full-scale (64-78 qubit)
circuits are exercised only by the explicitly-marked slow integration tests
and by the benchmark harness.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: full paper-scale checks (opt-in via REPRO_GOLDEN_SCALE)")
    config.addinivalue_line(
        "markers", "budget: wall-time budget guard for the compile+simulate hot path")

from repro.apps import (
    bernstein_vazirani_circuit,
    cuccaro_adder_circuit,
    qaoa_circuit,
    qft_circuit,
    supremacy_circuit,
)
from repro.compiler import compile_circuit
from repro.hardware import build_device
from repro.ir.circuit import Circuit
from repro.sim import simulate
from repro.toolflow import ArchitectureConfig


@pytest.fixture
def small_linear_device():
    """A 3-trap linear device with 6-ion traps (8 usable qubits)."""

    return build_device("L3", trap_capacity=6, gate="FM", reorder="GS", num_qubits=8)


@pytest.fixture
def small_grid_device():
    """A 2x2 grid device with 6-ion traps."""

    return build_device("G2x2", trap_capacity=6, gate="FM", reorder="GS", num_qubits=8)


@pytest.fixture
def l6_device():
    """A paper-style L6 device with 16-ion traps."""

    return build_device("L6", trap_capacity=16, gate="FM", reorder="GS")


@pytest.fixture
def tiny_circuit():
    """A 4-qubit circuit with local and non-local two-qubit gates."""

    circuit = Circuit(4, name="tiny")
    circuit.add("h", 0)
    circuit.add("cx", 0, 1)
    circuit.add("cx", 1, 2)
    circuit.add("cx", 2, 3)
    circuit.add("cx", 0, 3)
    return circuit


@pytest.fixture
def bell_circuit():
    """The smallest entangling circuit."""

    circuit = Circuit(2, name="bell")
    circuit.add("h", 0)
    circuit.add("cx", 0, 1)
    return circuit


@pytest.fixture
def qft8():
    """An 8-qubit QFT (56 two-qubit gates, all-to-all pattern)."""

    return qft_circuit(8)


@pytest.fixture
def qaoa8():
    """An 8-qubit, 3-layer QAOA ansatz."""

    return qaoa_circuit(8, layers=3)


@pytest.fixture
def bv8():
    """An 8-qubit Bernstein-Vazirani circuit."""

    return bernstein_vazirani_circuit(8)


@pytest.fixture
def adder8():
    """An 8-qubit (3+3 bit) Cuccaro adder."""

    return cuccaro_adder_circuit(8)


@pytest.fixture
def supremacy9():
    """A 9-qubit (3x3), 4-cycle random circuit."""

    return supremacy_circuit(9, cycles=4)


@pytest.fixture
def small_suite(qft8, qaoa8, bv8, adder8, supremacy9):
    """A miniature application suite keyed like the Table II suite."""

    return {
        "QFT": qft8,
        "QAOA": qaoa8,
        "BV": bv8,
        "Adder": adder8,
        "Supremacy": supremacy9,
    }


@pytest.fixture
def compiled_qft8(qft8):
    """(program, device) for an 8-qubit QFT on a small linear device."""

    device = build_device("L3", trap_capacity=6, gate="FM", reorder="GS",
                          num_qubits=qft8.num_qubits)
    program = compile_circuit(qft8, device)
    return program, device


@pytest.fixture
def simulated_qft8(compiled_qft8):
    """(program, device, result) for the compiled 8-qubit QFT."""

    program, device = compiled_qft8
    return program, device, simulate(program, device, keep_timeline=True)


@pytest.fixture
def small_config():
    """A small architecture config usable with the 8-qubit fixtures."""

    return ArchitectureConfig(topology="L3", trap_capacity=6)

#!/usr/bin/env python3
"""Regenerate ``golden_determinism.json`` from the current implementation.

Only run this after an *intentional* change to compiler or simulator
behaviour; the whole point of the golden file is to catch unintentional
drift.  Run from the repository root::

    PYTHONPATH=src python tests/data/regen_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.apps import scaled_suite, table2_suite
from repro.io.fingerprint import (
    circuit_fingerprint,
    program_fingerprint,
    result_metrics_hex,
)
from repro.sim.engine import simulate
from repro.toolflow import ArchitectureConfig
from repro.toolflow.runner import compile_for

#: (scale name, suite builder, [(topology, capacity, reorder), ...])
SNAPSHOT_PLAN = (
    ("scaled16", lambda: scaled_suite(16),
     [("L4", 8, "GS"), ("L4", 8, "IS"), ("G2x2", 8, "GS")]),
    ("paper", table2_suite,
     [("L6", 22, "GS"), ("L6", 22, "IS")]),
)


def snapshot() -> dict:
    golden = {}
    for scale, suite_fn, configs in SNAPSHOT_PLAN:
        suite = suite_fn()
        golden[scale] = {}
        for topology, capacity, reorder in configs:
            config = ArchitectureConfig(topology=topology, trap_capacity=capacity,
                                        reorder=reorder)
            key = f"{topology}-cap{capacity}-{reorder}"
            golden[scale][key] = {}
            for name, circuit in suite.items():
                program, device = compile_for(circuit, config)
                result = simulate(program, device)
                golden[scale][key][name] = {
                    "circuit": circuit_fingerprint(circuit),
                    "program": program_fingerprint(program),
                    "num_ops": len(program),
                    "metrics": result_metrics_hex(result),
                }
                print(f"{scale} {key} {name}: {len(program)} ops")
    return golden


if __name__ == "__main__":
    path = Path(__file__).parent / "golden_determinism.json"
    with open(path, "w") as fh:
        json.dump(snapshot(), fh, indent=1, sort_keys=True)
    print(f"wrote {path}")

#!/usr/bin/env python3
"""Regenerate ``golden_store_export.json`` through the real CLI.

The golden file is a canonical ``dse export`` of a small fixed design
space, committed so CI can byte-diff a freshly regenerated export against
it -- the scaled-down first step of figure regeneration through a
committed experiment store (see ROADMAP).  Only regenerate after an
*intentional* change to simulation outputs or the export format.  Run from
the repository root::

    PYTHONPATH=src python tests/data/regen_store_export.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.cli import main

#: The golden space as ``dse run`` CLI flags: 8 points, QFT+BV at 8 qubits
#: on a 3-trap linear device (the fast TINY space of the adaptive tests).
GOLDEN_RUN_FLAGS = [
    "--apps", "QFT,BV", "--qubits", "8", "--topologies", "L3",
    "--capacities", "6,8", "--gates", "AM1,FM", "--reorders", "GS",
]

GOLDEN_PATH = Path(__file__).parent / "golden_store_export.json"


def regenerate(output: Path) -> None:
    """Run the golden space through ``dse run`` + ``dse export``."""

    workdir = Path(tempfile.mkdtemp(prefix="golden_store_"))
    try:
        store = workdir / "store"
        code = main(["dse", "run", *GOLDEN_RUN_FLAGS, "--store", str(store)])
        if code != 0:
            raise SystemExit(f"dse run failed with exit code {code}")
        code = main(["dse", "export", "--store", str(store),
                     "--output", str(output)])
        if code != 0:
            raise SystemExit(f"dse export failed with exit code {code}")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    regenerate(GOLDEN_PATH)
    print(f"wrote {GOLDEN_PATH} ({GOLDEN_PATH.stat().st_size} bytes)")

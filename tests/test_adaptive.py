"""Tests for the adaptive model-based search subsystem (repro.dse.adaptive).

Covers the contracts the subsystem is built around:

* surrogate models and proposers are bit-deterministic under a fixed seed;
* the same (space, strategy, seed) yields the identical proposal sequence
  and best point for any ``jobs`` value and for single-process vs.
  dispatched propose/evaluate runs (kill-one-worker variant included,
  driven through ``examples/dse_adaptive.py --smoke`` exactly like the
  shard dispatcher's smoke in ``tests/test_dispatch.py``);
* the proposal ledger detects torn/tampered batches and recovers a killed
  proposer from its files alone;
* store rows carry schema v3 provenance that canonical exports strip;
* ``ExperimentStore.reload`` is incremental: O(new rows), no re-parse of
  unchanged files, full-rescan fallback on shrink/disappear.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

import pytest

from repro.cli import main
from repro.dse import (
    DSERunner,
    DesignSpace,
    ExperimentStore,
    ProposalLedger,
    Shard,
    make_strategy,
    run_adaptive_worker,
    run_proposer,
    write_manifest,
)
from repro.dse.adaptive.model import (
    PointEncoder,
    RFFSurrogate,
    TreeEnsembleSurrogate,
    make_surrogate,
)
from repro.dse.adaptive.propose import (
    AdaptiveHalvingProposer,
    BayesProposer,
    expected_improvement,
    make_proposer,
    upper_confidence_bound,
)
from repro.dse.adaptive.protocol import ProposalTampered

#: A fast 8-point space evaluated entirely with 8-qubit circuits.
TINY_SPACE = dict(apps=("QFT", "BV"), qubits=(8,), topologies=("L3",),
                  capacities=(6, 8), gates=("AM1", "FM"), reorders=("GS",))


def _space() -> DesignSpace:
    return DesignSpace(**TINY_SPACE)


def _rows(records):
    return [record.as_row() for record in records]


# --------------------------------------------------------------------------- #
class TestPointEncoder:
    def test_distinct_points_encode_distinctly(self):
        space = _space()
        encoder = PointEncoder(space)
        encoded = [encoder.encode(point) for point in space.points()]
        assert len(set(encoded)) == space.size
        assert all(len(features) == encoder.dim for features in encoded)

    def test_numeric_axes_normalise_and_extrapolate(self):
        space = _space()
        encoder = PointEncoder(space)
        points = list(space.points())
        low = [p for p in points if p.config.trap_capacity == 6][0]
        high = [p for p in points if p.config.trap_capacity == 8][0]
        assert encoder.encode(low)[0] == 0.0
        assert encoder.encode(high)[0] == 1.0
        # Proxy sizes (multi-fidelity rungs) encode without error.
        proxy = encoder.encode(low.with_qubits(16))
        assert len(proxy) == encoder.dim

    def test_none_qubits_encodes_as_full_scale(self):
        space = DesignSpace(apps=("QFT",), topologies=("L3",), capacities=(6,))
        encoder = PointEncoder(space)
        point = next(space.points())
        assert point.qubits is None
        assert encoder.encode(point)[2] == 1.0  # the qubits feature


class TestSurrogates:
    def _data(self):
        # y = 2*x0 - x1 + noiseless structure over a tiny grid.
        xs = [(a / 3.0, b / 3.0, float(a == b)) for a in range(4)
              for b in range(4)]
        ys = [2.0 * x[0] - x[1] for x in xs]
        return xs, ys

    @pytest.mark.parametrize("name", ["rff", "trees"])
    def test_seeded_determinism(self, name):
        xs, ys = self._data()
        predictions = []
        for _ in range(2):
            model = make_surrogate(name, 3, seed=7)
            for x, y in zip(xs, ys):
                model.observe(x, y)
            predictions.append([model.predict(x) for x in xs])
        assert predictions[0] == predictions[1]  # bit-identical

    @pytest.mark.parametrize("name", ["rff", "trees"])
    def test_learns_ranking(self, name):
        xs, ys = self._data()
        model = make_surrogate(name, 3, seed=0)
        for x, y in zip(xs, ys):
            model.observe(x, y)
        best = max(range(len(xs)), key=lambda i: ys[i])
        worst = min(range(len(xs)), key=lambda i: ys[i])
        assert model.predict(xs[best])[0] > model.predict(xs[worst])[0]

    def test_rff_incremental_matches_batch(self):
        # Sufficient statistics are order-accumulated, so two models fed
        # the same sequence agree exactly.
        xs, ys = self._data()
        one = RFFSurrogate(3, seed=1)
        two = RFFSurrogate(3, seed=1)
        for x, y in zip(xs, ys):
            one.observe(x, y)
        half = len(xs) // 2
        for x, y in zip(xs[:half], ys[:half]):
            two.observe(x, y)
        _ = two.predict(xs[0])  # interleaved prediction must not disturb
        for x, y in zip(xs[half:], ys[half:]):
            two.observe(x, y)
        assert one.predict(xs[3]) == two.predict(xs[3])

    def test_empty_model_predicts_prior(self):
        for name in ("rff", "trees"):
            model = make_surrogate(name, 2)
            assert model.predict((0.0, 0.0)) == (0.0, 1.0)

    def test_tree_variance_reflects_disagreement(self):
        xs, ys = self._data()
        model = TreeEnsembleSurrogate(3, seed=0)
        for x, y in zip(xs, ys):
            model.observe(x, y)
        _, std = model.predict((10.0, -10.0, 5.0))  # far outside the data
        assert std >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="dimension"):
            RFFSurrogate(0)
        with pytest.raises(ValueError, match="two trees"):
            TreeEnsembleSurrogate(2, trees=1)
        with pytest.raises(ValueError, match="unknown surrogate"):
            make_surrogate("magic", 2)


class TestAcquisition:
    def test_expected_improvement_properties(self):
        # No uncertainty: EI is the plain improvement, floored at zero.
        assert expected_improvement(1.0, 0.0, 0.5) == 0.5
        assert expected_improvement(0.2, 0.0, 0.5) == 0.0
        # Uncertainty adds optimism: EI > 0 even below the incumbent.
        assert expected_improvement(0.4, 0.1, 0.5) > 0.0
        # More uncertainty, more EI (same mean).
        assert expected_improvement(0.4, 0.3, 0.5) > \
            expected_improvement(0.4, 0.1, 0.5)

    def test_ucb(self):
        assert upper_confidence_bound(1.0, 0.5, 2.0) == 2.0
        assert upper_confidence_bound(1.0, 0.0) == 1.0


# --------------------------------------------------------------------------- #
class TestBayesProposer:
    def test_budget_and_no_repeats(self):
        space = _space()
        proposer = BayesProposer(space, seed=0, batch_size=2, max_evals=6)
        seen = []
        while True:
            batch = proposer.next_batch()
            if batch is None:
                break
            seen.extend(batch.keys)
            proposer.ingest(batch, [0.5] * len(batch.keys))
        assert len(seen) == len(set(seen)) == 6

    def test_proposal_sequence_is_deterministic(self):
        space = _space()
        values = {index: 1.0 / (index + 1)
                  for index in range(space.size)}
        sequences = []
        for _ in range(2):
            proposer = BayesProposer(space, seed=3, batch_size=2, max_evals=6)
            sequence = []
            while True:
                batch = proposer.next_batch()
                if batch is None:
                    break
                sequence.append(batch.keys)
                proposer.ingest(batch, [values[k] for k in batch.keys])
            sequences.append((sequence, proposer.best()))
        assert sequences[0] == sequences[1]

    def test_seed_changes_initialisation(self):
        space = _space()
        first = BayesProposer(space, seed=0, batch_size=4).next_batch()
        assert any(BayesProposer(space, seed=s, batch_size=4)
                   .next_batch().keys != first.keys for s in (1, 2, 3))

    def test_guided_batch_prefers_predicted_optimum(self):
        # Observe half the space with "higher index is better"; the guided
        # batch must pick unobserved candidates, deterministically.
        space = _space()
        proposer = BayesProposer(space, seed=1, batch_size=4, max_evals=8)
        batch = proposer.next_batch()
        proposer.ingest(batch, [key / 10.0 for key in batch.keys])
        guided = proposer.next_batch()
        assert set(guided.keys).isdisjoint(batch.keys)

    def test_best_tie_breaks_to_earliest(self):
        space = _space()
        proposer = BayesProposer(space, seed=0, batch_size=4, max_evals=4)
        batch = proposer.next_batch()
        proposer.ingest(batch, [0.7, 0.9, 0.9, 0.1])
        assert proposer.best() == (batch.keys[1], 0.9)

    def test_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            BayesProposer(_space(), batch_size=0)
        with pytest.raises(ValueError, match="acquisition"):
            BayesProposer(_space(), acquisition="magic")
        with pytest.raises(ValueError, match="unknown adaptive strategy"):
            make_proposer(_space(), {"name": "grid"})


class TestAdaptiveHalvingProposer:
    def test_ladder_shrinks_and_finishes_full_scale(self):
        space = DesignSpace(apps=("QFT", "BV"), qubits=(16,),
                            topologies=("L3",), capacities=(6, 8),
                            gates=("AM1", "FM"), reorders=("GS",))
        proposer = AdaptiveHalvingProposer(space, seed=0, proxy_qubits=8)
        sizes = []
        while True:
            batch = proposer.next_batch()
            if batch is None:
                break
            sizes.append((batch.proxy_qubits, len(batch.keys)))
            # Candidate index is the score: a clear, consistent ranking.
            proposer.ingest(batch, [k / 10.0 for k in batch.keys])
        assert sizes[0][0] == 8  # first rung at the proxy size
        assert sizes[-1][0] is None  # last rung at full scale
        counts = [count for _, count in sizes]
        assert counts == sorted(counts, reverse=True)
        assert proposer.best() is not None

    def test_promotion_caps_at_half_and_floors_at_min(self):
        space = DesignSpace(**dict(TINY_SPACE, qubits=(16,)))
        proposer = AdaptiveHalvingProposer(space, seed=0, proxy_qubits=8,
                                           min_survivors=2)
        batch = proposer.next_batch()
        assert batch.proxy_qubits == 8  # a genuine proxy rung
        # All candidates tie: the UCB rule would keep everyone, so the cap
        # must bound survivors at half the rung.
        proposer.ingest(batch, [0.5] * len(batch.keys))
        kept = proposer.trace[-1]["kept"]
        assert kept <= max(2, -(-len(batch.keys) // 2))
        assert kept >= 2

    def test_validation(self):
        with pytest.raises(ValueError, match="proxy_qubits"):
            AdaptiveHalvingProposer(_space(), proxy_qubits=4)
        with pytest.raises(ValueError, match="min_survivors"):
            AdaptiveHalvingProposer(_space(), min_survivors=0)


# --------------------------------------------------------------------------- #
class TestAdaptiveStrategies:
    @pytest.mark.parametrize("name,kwargs", [
        ("bayes", dict(batch_size=2)),
        ("adaptive-halving", dict(proxy_qubits=8)),
    ])
    def test_deterministic_for_any_jobs(self, name, kwargs):
        outcomes = []
        for jobs in (1, 2):
            runner = DSERunner(_space(), jobs=jobs)
            result = runner.run(make_strategy(name, seed=5, **kwargs))
            outcomes.append((_rows(result.evaluated), result.best.as_row(),
                             result.trace))
        assert outcomes[0] == outcomes[1]

    def test_bayes_respects_quarter_budget(self):
        space = _space()
        runner = DSERunner(space)
        runner.run(make_strategy("bayes", seed=0, batch_size=2))
        assert runner.stats["evaluated"] <= max(4, space.size // 4)

    def test_bayes_reuses_store_across_runs(self):
        runner = DSERunner(_space())
        first = runner.run(make_strategy("bayes", seed=2, batch_size=2))
        rerun = DSERunner(_space(), store=runner.store)
        second = rerun.run(make_strategy("bayes", seed=2, batch_size=2))
        assert rerun.stats["evaluated"] == 0
        assert _rows(first.evaluated) == _rows(second.evaluated)
        assert first.best.as_row() == second.best.as_row()

    def test_adaptive_strategies_refuse_static_shards(self):
        runner = DSERunner(_space(), shard=Shard(1, 2))
        with pytest.raises(ValueError, match="cannot be sharded"):
            runner.run(make_strategy("bayes"))

    def test_adaptive_halving_best_is_full_scale(self):
        space = DesignSpace(apps=("BV",), qubits=(16,), topologies=("L3",),
                            capacities=(6, 8), gates=("AM1", "FM"),
                            reorders=("GS",))
        result = DSERunner(space).run(
            make_strategy("adaptive-halving", proxy_qubits=8))
        assert result.best.as_row()["application"] == "bv16"

    def test_make_strategy_names(self):
        assert make_strategy("bayes").name == "bayes"
        assert make_strategy("adaptive-halving").name == "adaptive-halving"
        assert make_strategy("bayes", surrogate="trees").surrogate == "trees"


# --------------------------------------------------------------------------- #
class TestProvenance:
    def test_rows_carry_strategy_seed_and_rung(self, tmp_path):
        space = _space()
        with ExperimentStore(tmp_path / "store") as store:
            DSERunner(space, store=store).run(
                make_strategy("bayes", seed=9, batch_size=2))
        reloaded = ExperimentStore(tmp_path / "store")
        stamps = [row.get("provenance") for row in reloaded.rows()]
        assert all(stamp is not None for stamp in stamps)
        assert all(stamp["strategy"] == "bayes" for stamp in stamps)
        assert all(stamp["seed"] == 9 for stamp in stamps)
        assert all(stamp["rung"] is None for stamp in stamps)

    def test_halving_rows_record_fidelity_rung(self, tmp_path):
        space = DesignSpace(apps=("BV",), qubits=(16,), topologies=("L3",),
                            capacities=(6, 8), gates=("AM1", "FM"),
                            reorders=("GS",))
        with ExperimentStore(tmp_path / "store") as store:
            DSERunner(space, store=store).run(
                make_strategy("adaptive-halving", proxy_qubits=8))
        rungs = {(row["provenance"]["rung"], row["provenance"]["proxy_qubits"])
                 for row in ExperimentStore(tmp_path / "store").rows()}
        assert any(proxy == 8 for _, proxy in rungs)  # proxy rung recorded
        assert any(proxy is None for _, proxy in rungs)  # full-scale rung

    def test_export_strips_provenance_for_cross_version_stability(self, tmp_path):
        # A grid store (with provenance) and a hand-written v2-era store of
        # the same rows must export byte-identically.
        space = _space()
        with ExperimentStore(tmp_path / "new") as store:
            DSERunner(space, store=store).run(make_strategy("grid"))
        new_store = ExperimentStore(tmp_path / "new")
        old_dir = tmp_path / "old"
        old_dir.mkdir()
        with open(old_dir / "results.jsonl", "w") as handle:
            for row in new_store.rows():
                stripped = {key: value for key, value in row.items()
                            if key not in ("provenance", "wall_s")}
                stripped["schema_version"] = 2
                handle.write(json.dumps(stripped, sort_keys=True) + "\n")
        assert ExperimentStore(old_dir).export_rows() == \
            new_store.export_rows()

    def test_direct_evaluate_after_strategy_run_is_provenance_free(self, tmp_path):
        # The strategy's provenance context ends with the run: a later
        # direct evaluate() on the same runner must not stamp its rows.
        space = _space()
        with ExperimentStore(tmp_path / "store") as store:
            runner = DSERunner(space, store=store)
            runner.run(make_strategy("bayes", seed=0, batch_size=2))
            assert runner.provenance is None
            leftover = [point for point in space.points()
                        if runner.fingerprint(point) not in store]
            runner.evaluate(leftover[:1])
        reloaded = ExperimentStore(tmp_path / "store")
        stamps = [row.get("provenance") for row in reloaded.rows()]
        assert stamps.count(None) == 1  # exactly the direct evaluation

    def test_replayed_rows_keep_their_provenance(self, tmp_path):
        space = _space()
        with ExperimentStore(tmp_path / "store") as store:
            DSERunner(space, store=store).run(
                make_strategy("bayes", seed=1, batch_size=2))
        reloaded = ExperimentStore(tmp_path / "store")
        record = reloaded.records()[0]
        assert record.provenance["strategy"] == "bayes"
        # Merging the replayed record into a fresh store keeps the stamp.
        from repro.dse import record_to_row
        row = record_to_row("ff", record.point, record)
        assert row["provenance"]["strategy"] == "bayes"

    def test_status_by_strategy_cli(self, tmp_path, capsys):
        space = _space()
        store_dir = tmp_path / "store"
        with ExperimentStore(store_dir) as store:
            DSERunner(space, store=store).run(
                make_strategy("bayes", seed=4, batch_size=2))
        with ExperimentStore(store_dir) as store:
            DSERunner(space, store=store).run(make_strategy("grid"))
        assert main(["dse", "status", "--store", str(store_dir),
                     "--by-strategy"]) == 0
        out = capsys.readouterr().out
        assert "By strategy" in out
        assert "bayes" in out
        assert "grid" in out
        assert "seed(s) [4]" in out


# --------------------------------------------------------------------------- #
class TestIncrementalReload:
    def _row(self, fingerprint):
        return {"schema_version": 1, "fingerprint": fingerprint,
                "point": {"app": "QFT", "qubits": None,
                          "config": {"topology": "L3", "trap_capacity": 6,
                                     "gate": "FM", "reorder": "GS",
                                     "buffer_ions": 2}},
                "application": "qft8", "program_ops": 3, "shuttles": 1,
                "metrics": {"duration_us": 10.0, "duration_s": 1e-5,
                            "fidelity": 0.5, "log_fidelity": -0.69,
                            "computation_s": 1e-5, "communication_s": 0.0,
                            "max_motional_energy": 0.0,
                            "mean_background_error": 0.0,
                            "mean_motional_error": 0.0,
                            "num_shuttles": 1.0, "num_ms_gates": 2.0}}

    def test_unchanged_files_are_not_reparsed(self, tmp_path):
        store_dir = tmp_path / "store"
        with ExperimentStore(store_dir, writer="other") as writer:
            writer.add(self._row("aa"))
            writer.add(self._row("bb"))
        reader = ExperimentStore(store_dir)
        assert len(reader) == 2
        scanned_after_load = reader.scan_stats["files_scanned"]
        bytes_after_load = reader.scan_stats["bytes_read"]
        for _ in range(3):  # progress ticks with nothing new
            reader.reload()
        assert reader.scan_stats["files_scanned"] == scanned_after_load
        assert reader.scan_stats["bytes_read"] == bytes_after_load
        assert reader.scan_stats["files_unchanged"] == 3
        assert reader.scan_stats["full_scans"] == 1

    def test_reload_reads_only_appended_rows(self, tmp_path):
        store_dir = tmp_path / "store"
        writer = ExperimentStore(store_dir, writer="other")
        writer.add(self._row("aa"))
        reader = ExperimentStore(store_dir)
        baseline_bytes = reader.scan_stats["bytes_read"]
        writer.add(self._row("bb"))
        writer.close()
        reader.reload()
        assert sorted(reader.fingerprints()) == ["aa", "bb"]
        appended = reader.scan_stats["bytes_read"] - baseline_bytes
        row_size = len(json.dumps(self._row("bb"), sort_keys=True)) + 1
        assert appended == row_size  # exactly the new row, not the file
        assert reader.scan_stats["full_scans"] == 1  # never rescanned

    def test_own_appends_are_not_reparsed_on_reload(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        store.add(self._row("aa"))
        bytes_before = store.scan_stats["bytes_read"]
        store.reload()
        assert store.scan_stats["bytes_read"] == bytes_before
        assert "aa" in store

    def test_new_file_is_picked_up(self, tmp_path):
        store_dir = tmp_path / "store"
        reader = ExperimentStore(store_dir)
        with ExperimentStore(store_dir, writer="shard-1of2") as writer:
            writer.add(self._row("aa"))
        reader.reload()
        assert reader.fingerprints() == ["aa"]
        assert reader.scan_stats["full_scans"] == 1

    def test_shrunk_file_triggers_full_rescan(self, tmp_path):
        store_dir = tmp_path / "store"
        with ExperimentStore(store_dir, writer="other") as writer:
            writer.add(self._row("aa"))
            writer.add(self._row("bb"))
        reader = ExperimentStore(store_dir)
        path = store_dir / "other.jsonl"
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n")  # history rewritten: row dropped
        reader.reload()
        assert reader.scan_stats["full_scans"] == 2
        assert reader.fingerprints() == ["aa"]

    def test_deleted_file_triggers_full_rescan(self, tmp_path):
        store_dir = tmp_path / "store"
        with ExperimentStore(store_dir, writer="gone") as writer:
            writer.add(self._row("aa"))
        with ExperimentStore(store_dir, writer="kept") as writer:
            writer.add(self._row("bb"))
        reader = ExperimentStore(store_dir)
        (store_dir / "gone.jsonl").unlink()
        reader.reload()
        assert reader.scan_stats["full_scans"] == 2
        assert reader.fingerprints() == ["bb"]

    def test_torn_tail_completed_later_is_picked_up(self, tmp_path):
        # A writer killed mid-append leaves an unterminated fragment; the
        # incremental reader must not consume past it, so when the line is
        # completed (or healed away) the next reload sees the truth.
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        path = store_dir / "results.jsonl"
        full = json.dumps(self._row("aa"), sort_keys=True)
        path.write_text(full[:40])  # torn mid-row, no newline
        reader = ExperimentStore(store_dir)
        assert reader.fingerprints() == []
        assert reader.skipped_lines == 1
        path.write_text(full + "\n" + json.dumps(self._row("bb"),
                                                 sort_keys=True) + "\n")
        reader.reload()
        assert sorted(reader.fingerprints()) == ["aa", "bb"]
        # The tentative tail skip evaporated with the completed line: the
        # store ends clean, not haunted by the in-flight snapshot.
        assert reader.skipped_lines == 0

    def test_growing_inflight_tail_never_accumulates_skips(self, tmp_path):
        # A watcher polling reload() while a writer slowly flushes one row
        # must report at most the single in-flight line as skipped, and
        # zero once the line completes -- never one skip per poll.
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        path = store_dir / "results.jsonl"
        full = json.dumps(self._row("aa"), sort_keys=True)
        path.write_text(full[:20])
        reader = ExperimentStore(store_dir)
        for cut in (30, 40, 50):  # the writer's flushes land mid-line
            path.write_text(full[:cut])
            reader.reload()
            assert reader.skipped_lines == 1
        path.write_text(full + "\n")
        reader.reload()
        assert reader.skipped_lines == 0
        assert reader.fingerprints() == ["aa"]

    def test_midfile_skip_followed_only_by_tail_still_warns(self, tmp_path):
        # A corrupt terminated line proven mid-file only by an unterminated
        # (in-flight) tail row must still warn -- the PR 3 guarantee that
        # mid-file corruption is never silent.
        from repro.dse import StoreCorruptionWarning

        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "results.jsonl").write_text(
            json.dumps(self._row("aa"), sort_keys=True) + "\n"
            + "GARBAGE{{{\n"
            + json.dumps(self._row("bb"), sort_keys=True))  # no newline
        with pytest.warns(StoreCorruptionWarning, match="torn or corrupt"):
            store = ExperimentStore(store_dir)
        assert sorted(store.fingerprints()) == ["aa", "bb"]
        assert store.skipped_lines == 1

    def test_own_writer_heal_clears_tail_skip(self, tmp_path):
        # Opening our own writer truncates a fragment tail away; the
        # tentative skip must vanish with it, in-process, so status never
        # reports corruption a fresh open would not see.
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "results.jsonl").write_text(
            json.dumps(self._row("aa"), sort_keys=True) + "\n" + '{"frag')
        store = ExperimentStore(store_dir)
        assert store.skipped_lines == 1
        store.add(self._row("bb"))
        assert store.skipped_lines == 0
        store.close()
        assert ExperimentStore(store_dir).skipped_lines == 0

    def test_repeated_reload_with_static_torn_tail_counts_once(self, tmp_path):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "results.jsonl").write_text(
            json.dumps(self._row("aa"), sort_keys=True) + "\n" + '{"torn')
        reader = ExperimentStore(store_dir)
        assert reader.skipped_lines == 1
        for _ in range(3):
            reader.reload()
        assert reader.skipped_lines == 1  # the in-flight tail is not recounted
        assert reader.fingerprints() == ["aa"]


# --------------------------------------------------------------------------- #
class TestProposalLedger:
    def _batch(self, proposer=None):
        proposer = proposer or BayesProposer(_space(), seed=0, batch_size=4)
        return proposer.next_batch()

    def test_write_read_round_trip(self, tmp_path):
        ledger = ProposalLedger(tmp_path / "store")
        batch = self._batch()
        ledger.write_batch(batch, {"strategy": "bayes", "seed": 0,
                                   "metric": "fidelity"})
        rebuilt = ledger.batch_from_payload(
            ledger.read_work(ledger.work_name(batch.number, 1)))
        assert rebuilt.keys == batch.keys
        assert rebuilt.points == batch.points

    def test_parts_split_points_contiguously(self, tmp_path):
        ledger = ProposalLedger(tmp_path / "store")
        batch = self._batch()
        paths = ledger.write_batch(batch, {}, parts=3)
        assert len(paths) == 3
        merged = ledger.read_logical_batch(batch.number)
        assert tuple(merged["keys"]) == batch.keys
        assert merged["points"] == [p.spec() for p in batch.points]
        sizes = [len(ledger.read_work(p.stem)["keys"]) for p in paths]
        assert sum(sizes) == len(batch.keys)
        assert max(sizes) - min(sizes) <= 1

    def test_tampered_batch_is_rejected(self, tmp_path):
        ledger = ProposalLedger(tmp_path / "store")
        batch = self._batch()
        (path,) = ledger.write_batch(batch, {})
        payload = json.loads(path.read_text())
        payload["keys"][0] = 99  # tamper
        path.write_text(json.dumps(payload))
        with pytest.raises(ProposalTampered, match="signature mismatch"):
            ledger.read_work(path.stem)

    def test_claim_done_lifecycle(self, tmp_path):
        ledger = ProposalLedger(tmp_path / "store")
        batch = self._batch()
        ledger.write_batch(batch, {}, parts=2)
        first = ledger.claim_next("worker-a")
        second = ledger.claim_next("worker-b")
        assert {first, second} == set(ledger.work_names())
        assert ledger.claim_next("worker-c") is None  # everything leased
        ledger.release(first, "worker-a", done=True)
        assert ledger.is_done(first)
        assert not ledger.all_done()  # no complete marker yet
        ledger.release(second, "worker-b", done=True)
        ledger.write_complete({"batches": 1, "evaluations": 4, "best": None})
        assert ledger.all_done()
        assert ledger.read_complete()["evaluations"] == 4

    def test_corrupt_complete_marker_reads_as_absent(self, tmp_path):
        ledger = ProposalLedger(tmp_path / "store")
        ledger.directory.mkdir(parents=True)
        ledger.complete_path.write_text('{"torn')
        assert ledger.read_complete() is None
        ledger.complete_path.write_text('{"batches": 1}')  # unsigned
        assert ledger.read_complete() is None


# --------------------------------------------------------------------------- #
class TestProposeEvaluateProtocol:
    def _manifest(self, store_dir, strategy):
        space = _space()
        return write_manifest(store_dir, space, mode="adaptive",
                              strategy=strategy, ttl_s=60.0)

    def test_dispatched_run_matches_serial(self, tmp_path):
        """Single-process vs propose/evaluate: identical rows and best."""

        space = _space()
        strategy = {"name": "bayes", "seed": 5, "metric": "fidelity",
                    "batch_size": 2}
        with ExperimentStore(tmp_path / "serial") as store:
            serial_runner = DSERunner(space, store=store)
            serial = serial_runner.run(make_strategy("bayes", seed=5,
                                                     batch_size=2))

        store_dir = tmp_path / "dispatched"
        self._manifest(store_dir, strategy)
        worker = threading.Thread(
            target=run_adaptive_worker, args=(store_dir,),
            kwargs=dict(owner="threaded-worker", idle_wait_s=0.02))
        worker.start()
        summary = run_proposer(store_dir, poll_s=0.02)
        worker.join(timeout=120.0)
        assert not worker.is_alive()

        assert summary["evaluations"] == serial_runner.stats["evaluated"]
        best_point = summary["best"]["point"]
        serial_best = serial.best.as_row()
        assert best_point["config"]["gate"] == serial_best["gate"]
        assert best_point["config"]["trap_capacity"] == serial_best["capacity"]
        # Byte-identical canonical exports.
        assert ExperimentStore(tmp_path / "serial").export_rows() == \
            ExperimentStore(store_dir).export_rows()

    def test_killed_proposer_restarts_from_ledger(self, tmp_path):
        """A second proposer run continues/validates from the batch files."""

        space = _space()
        strategy = {"name": "bayes", "seed": 7, "metric": "fidelity",
                    "batch_size": 2}
        store_dir = tmp_path / "store"
        self._manifest(store_dir, strategy)

        # First proposer "dies" after writing batch 1: simulate by writing
        # the batch by hand through the proposer, then evaluating it.
        proposer = make_proposer(space, dict(strategy))
        ledger = ProposalLedger(store_dir)
        batch = proposer.next_batch()
        ledger.write_batch(batch, {"strategy": "bayes", "seed": 7,
                                   "metric": "fidelity"})
        with ExperimentStore(store_dir, writer="adaptive-w") as store:
            DSERunner(space, store=store).evaluate(list(batch.points))

        # The restarted proposer replays batch 1 from the ledger, then runs
        # the remaining batches; a worker thread evaluates them.
        worker = threading.Thread(
            target=run_adaptive_worker, args=(store_dir,),
            kwargs=dict(owner="threaded-worker", idle_wait_s=0.02))
        worker.start()
        summary = run_proposer(store_dir, poll_s=0.02)
        worker.join(timeout=120.0)
        assert not worker.is_alive()

        # Identical to an uninterrupted serial run of the same strategy.
        with ExperimentStore(tmp_path / "serial") as store:
            DSERunner(space, store=store).run(
                make_strategy("bayes", seed=7, batch_size=2))
        assert ExperimentStore(store_dir).export_rows() == \
            ExperimentStore(tmp_path / "serial").export_rows()
        assert summary["batches"] >= 2

    def test_proposer_killed_between_part_writes_recovers(self, tmp_path):
        """A partial multi-part batch is repaired on restart, not wedged."""

        space = _space()
        strategy = {"name": "bayes", "seed": 5, "metric": "fidelity",
                    "batch_size": 3, "parts": 3}
        store_dir = tmp_path / "store"
        self._manifest(store_dir, strategy)
        # First proposer "dies" mid-write_batch: only part 1 of 3 landed.
        proposer = make_proposer(space, {k: v for k, v in strategy.items()
                                         if k != "parts"})
        ledger = ProposalLedger(store_dir)
        batch = proposer.next_batch()
        paths = ledger.write_batch(batch, {"strategy": "bayes", "seed": 5,
                                           "metric": "fidelity"}, parts=3)
        for path in paths[1:]:
            path.unlink()  # the parts the kill prevented

        worker = threading.Thread(
            target=run_adaptive_worker, args=(store_dir,),
            kwargs=dict(owner="threaded-worker", idle_wait_s=0.02))
        worker.start()
        summary = run_proposer(store_dir, poll_s=0.02)
        worker.join(timeout=120.0)
        assert not worker.is_alive()
        assert summary["evaluations"] == proposer.max_evals

        with ExperimentStore(tmp_path / "serial") as store:
            DSERunner(space, store=store).run(
                make_strategy("bayes", seed=5, batch_size=3))
        assert ExperimentStore(store_dir).export_rows() == \
            ExperimentStore(tmp_path / "serial").export_rows()

    def test_foreign_ledger_is_rejected(self, tmp_path):
        space = _space()
        store_dir = tmp_path / "store"
        self._manifest(store_dir, {"name": "bayes", "seed": 0,
                                   "metric": "fidelity", "batch_size": 2})
        # A ledger written by a *different* seed must be refused, not
        # silently continued.
        other = make_proposer(space, {"name": "bayes", "seed": 1,
                                      "metric": "fidelity", "batch_size": 2})
        ProposalLedger(store_dir).write_batch(other.next_batch(), {})
        with ExperimentStore(store_dir, writer="w") as store:
            DSERunner(space, store=store).evaluate_space()  # rows available
        with pytest.raises(ValueError, match="does not match"):
            run_proposer(store_dir, poll_s=0.01)

    def test_proposer_requires_adaptive_manifest(self, tmp_path):
        write_manifest(tmp_path / "store", _space(), shards=2)
        with pytest.raises(ValueError, match="not an adaptive dispatch"):
            run_proposer(tmp_path / "store")

    def test_manifest_mode_conflicts_are_rejected(self, tmp_path):
        space = _space()
        write_manifest(tmp_path / "store", space, shards=2)
        with pytest.raises(ValueError, match="different dispatch"):
            write_manifest(tmp_path / "store", space, mode="adaptive",
                           strategy={"name": "bayes"})
        with pytest.raises(ValueError, match="needs a strategy"):
            write_manifest(tmp_path / "other", space, mode="adaptive")
        with pytest.raises(ValueError, match="needs a shard count"):
            write_manifest(tmp_path / "other", space)

    def test_kill_one_worker_matches_serial_run(self):
        """The acceptance scenario, via the single source of truth.

        ``examples/dse_adaptive.py --smoke`` (also the CI ``adaptive-smoke``
        job) runs: seeded bayes finds the grid best within a quarter of the
        grid's evaluations, and a 3-worker propose/evaluate dispatch with
        one worker SIGKILLed mid-batch exports byte-identically to the
        serial adaptive run.  This test drives that script exactly like
        ``tests/test_dispatch.py`` drives the shard smoke.
        """

        import subprocess
        import sys

        repo_root = Path(__file__).resolve().parents[1]
        env = os.environ.copy()
        src = str(repo_root / "src")
        env["PYTHONPATH"] = (src if "PYTHONPATH" not in env
                             else src + os.pathsep + env["PYTHONPATH"])
        result = subprocess.run(
            [sys.executable, str(repo_root / "examples" / "dse_adaptive.py"),
             "--smoke"],
            capture_output=True, text=True, env=env, timeout=600.0)
        assert result.returncode == 0, \
            f"smoke failed:\n{result.stdout}\n{result.stderr}"
        assert "SIGKILLed worker" in result.stdout
        assert "byte-identical to the serial run" in result.stdout


# --------------------------------------------------------------------------- #
class TestAdaptiveCli:
    def test_run_strategy_bayes(self, capsys, tmp_path):
        assert main(["dse", "run", "--apps", "QFT,BV", "--qubits", "8",
                     "--topologies", "L3", "--capacities", "6,8",
                     "--gates", "AM1,FM", "--strategy", "bayes",
                     "--seed", "1", "--batch-size", "2",
                     "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "Strategy    : bayes" in out
        assert "Best point" in out

    def test_dispatch_print_only_adaptive(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(["dse", "dispatch", "--apps", "QFT", "--qubits", "8",
                     "--topologies", "L3", "--capacities", "6,8",
                     "--gates", "AM1,FM", "--strategy", "bayes",
                     "--store", str(store), "--workers", "2",
                     "--print-only"]) == 0
        out = capsys.readouterr().out
        assert "repro dse propose --store" in out
        assert out.count("repro dse worker --store") == 2
        from repro.dse import read_manifest
        manifest = read_manifest(store)
        assert manifest["mode"] == "adaptive"
        assert manifest["strategy"]["name"] == "bayes"
        assert manifest["strategy"]["parts"] == 2
        # The resolved budget is recorded so `dse status --eta` never has
        # to construct a proposer (space size 4 -> floor of two batches).
        assert manifest["strategy"]["max_evals"] == 4

    def test_status_eta_unbudgeted_adaptive_reports_unknown(self, capsys,
                                                            tmp_path):
        # A multi-fidelity ladder has no fixed budget; mid-run ETA must say
        # so rather than claim "0 pending" once proxy rows fill the store.
        store_dir = tmp_path / "store"
        write_manifest(store_dir, _space(), mode="adaptive",
                       strategy={"name": "adaptive-halving", "seed": 0})
        with ExperimentStore(store_dir) as store:
            DSERunner(_space(), store=store).evaluate(
                list(_space().points())[:2])
        assert main(["dse", "status", "--store", str(store_dir),
                     "--eta"]) == 0
        out = capsys.readouterr().out
        assert "no fixed evaluation budget" in out
        assert "0 pending" not in out

    def test_propose_without_manifest_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no dispatch manifest"):
            main(["dse", "propose", "--store", str(tmp_path / "store")])

    def test_pareto_output_csv(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        with ExperimentStore(store_dir) as store:
            DSERunner(_space(), store=store).evaluate(
                list(_space().points())[:2])
        output = tmp_path / "deep" / "frontier.csv"
        assert main(["dse", "pareto", "--store", str(store_dir),
                     "--output", str(output)]) == 0
        assert "Wrote CSV" in capsys.readouterr().out
        lines = output.read_text().splitlines()
        assert lines[0].startswith("application,")
        assert len(lines) >= 2

    def test_pareto_csv_write_failure_exits_nonzero(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        with ExperimentStore(store_dir) as store:
            DSERunner(_space(), store=store).evaluate(
                list(_space().points())[:1])
        blocker = tmp_path / "blocked"
        blocker.write_text("a file, not a directory")
        assert main(["dse", "pareto", "--store", str(store_dir),
                     "--output", str(blocker / "frontier.csv")]) == 1
        assert "cannot write" in capsys.readouterr().err

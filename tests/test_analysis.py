"""Unit tests for the analysis helpers (series, comparisons, breakdowns)."""

import pytest

from repro.analysis.breakdown import error_contributions, heating_profile, time_breakdown
from repro.analysis.compare import (
    best_worst_ratio,
    crossover_capacity,
    gate_choice_improvement,
    reorder_fidelity_ratio,
    topology_fidelity_ratio,
)
from repro.analysis.series import (
    flatten_nested_series,
    format_series_table,
    series_to_rows,
)
from repro.compiler import compile_circuit
from repro.hardware import build_device
from repro.sim import simulate


class TestSeries:
    def test_series_to_rows(self):
        rows = series_to_rows([14, 18], {"QFT": [0.1, 0.2], "BV": [0.9, 0.95]})
        assert rows[0] == {"capacity": 14, "QFT": 0.1, "BV": 0.9}
        assert rows[1]["BV"] == 0.95

    def test_series_to_rows_handles_short_series(self):
        rows = series_to_rows([14, 18], {"QFT": [0.1]})
        assert rows[1]["QFT"] is None

    def test_format_series_table(self):
        text = format_series_table([14, 18], {"QFT": [0.1, 0.2]}, title="Fidelity")
        assert "Fidelity" in text
        assert "capacity" in text
        assert "14" in text and "0.2" in text

    def test_format_series_table_missing_values(self):
        text = format_series_table([14, 18], {"QFT": [0.1]})
        assert "-" in text

    def test_flatten_nested_series(self):
        flat = flatten_nested_series({"QFT": {"L6": [1], "G2x3": [2]}})
        assert flat == {"QFT/L6": [1], "QFT/G2x3": [2]}


class TestCompare:
    def test_best_worst_ratio(self):
        assert best_worst_ratio([0.1, 0.5, 1.0]) == pytest.approx(10.0)
        assert best_worst_ratio([]) == 1.0
        assert best_worst_ratio([0.0, 1.0]) == float("inf")

    def test_topology_ratio(self):
        ratio = topology_fidelity_ratio({"G2x3": [0.5, 0.6], "L6": [0.001, 0.3]},
                                        better="G2x3", worse="L6")
        assert ratio == pytest.approx(500.0)

    def test_gate_choice_improvement(self):
        combos = {"FM-GS": [0.9, 0.8], "AM1-GS": [0.1, 0.4]}
        assert gate_choice_improvement(combos, "FM", "AM1") == pytest.approx(9.0)

    def test_reorder_ratio(self):
        combos = {"FM-GS": [0.9], "FM-IS": [0.09]}
        assert reorder_fidelity_ratio(combos, gate="FM") == pytest.approx(10.0)

    def test_crossover_capacity(self):
        assert crossover_capacity([14, 18, 22, 26], [0.1, 0.4, 0.5, 0.2]) == 22
        with pytest.raises(ValueError):
            crossover_capacity([], [])


class TestBreakdown:
    @pytest.fixture
    def result(self, qft8):
        device = build_device("L3", trap_capacity=6, num_qubits=8)
        return simulate(compile_circuit(qft8, device), device)

    def test_error_contributions(self, result):
        contributions = error_contributions(result)
        assert contributions["total"] == pytest.approx(
            contributions["background"] + contributions["motional"])
        assert 0.0 <= contributions["motional_share"] <= 1.0

    def test_time_breakdown(self, result):
        breakdown = time_breakdown(result)
        assert breakdown["total_s"] == pytest.approx(
            breakdown["computation_s"] + breakdown["communication_s"])
        assert 0.0 <= breakdown["communication_fraction"] <= 1.0

    def test_heating_profile(self, result):
        profile = heating_profile(result)
        assert profile["device_max_over_time"] >= max(
            value for key, value in profile.items() if key.startswith("T")) - 1e-9

"""Unit tests for timeline analytics."""

import pytest

from repro.analysis.timeline import (
    communication_on_critical_path,
    critical_path,
    format_gantt,
    parallelism_profile,
    peak_parallelism,
    trap_utilisation,
)
from repro.compiler import compile_circuit
from repro.hardware import build_device
from repro.sim import simulate


class TestTimelineAnalytics:
    def test_requires_timeline(self, compiled_qft8):
        program, device = compiled_qft8
        result = simulate(program, device)  # no timeline kept
        with pytest.raises(ValueError):
            trap_utilisation(program, result)

    def test_trap_utilisation_fractions(self, simulated_qft8):
        program, _, result = simulated_qft8
        utilisation = trap_utilisation(program, result)
        assert utilisation, "at least one trap was used"
        for fractions in utilisation.values():
            assert fractions["gate"] >= 0.0
            assert fractions["communication"] >= 0.0
            assert 0.0 <= fractions["idle"] <= 1.0
            total = fractions["gate"] + fractions["communication"] + fractions["idle"]
            assert total == pytest.approx(1.0, abs=1e-6) or total <= 1.0 + 1e-6

    def test_parallelism_profile_bounds(self, simulated_qft8):
        _, _, result = simulated_qft8
        profile = parallelism_profile(result, num_bins=20)
        assert len(profile) == 20
        assert all(value >= 0.0 for value in profile)
        assert max(profile) <= peak_parallelism(result) + 1e-9

    def test_peak_parallelism_at_least_one(self, simulated_qft8):
        _, _, result = simulated_qft8
        assert peak_parallelism(result) >= 1

    def test_critical_path_is_a_dependency_chain(self, simulated_qft8):
        program, _, result = simulated_qft8
        chain = critical_path(program, result)
        assert chain, "critical path is non-empty"
        finish = {record.op_id: record.finish for record in result.timeline}
        assert finish[chain[-1]] == pytest.approx(result.duration)
        for earlier, later in zip(chain, chain[1:]):
            assert earlier in program[later].dependencies

    def test_communication_share_in_unit_interval(self, simulated_qft8):
        program, _, result = simulated_qft8
        share = communication_on_critical_path(program, result)
        assert 0.0 <= share <= 1.0

    def test_gantt_renders_every_trap(self, simulated_qft8):
        program, device, result = simulated_qft8
        chart = format_gantt(program, result, width=40)
        used_traps = {trap for trap, count in result.peak_occupancy.items() if count > 0}
        for trap in used_traps:
            assert trap in chart
        assert "legend" in chart

    def test_local_circuit_has_gate_only_critical_path(self, bell_circuit):
        device = build_device("L2", trap_capacity=6, num_qubits=2)
        program = compile_circuit(bell_circuit, device)
        result = simulate(program, device, keep_timeline=True)
        assert communication_on_critical_path(program, result) == 0.0
        assert peak_parallelism(result) == 1

"""Static analysis: verifier, race detector, determinism linter, runtime.

The backbone is the mutation corpus: every legality rule the verifier
enforces is exercised by corrupting a *golden* compiled program (seeded op
selection, ``object.__setattr__`` to bypass the frozen dataclasses -- the
same route a compiler bug would take) and asserting the matching check id
fires.  The clean-suite test is the flip side: zero findings across the
full app suite under both reorder modes and both topology families.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.analyze import (
    CHECKS,
    Report,
    StaticAnalysisError,
    check_severity,
    checks_enabled,
    detect_races,
    diag,
    enable_checks,
    lint_paths,
    lint_source,
    merge_reports,
    quick_validate,
    reset_checks,
    verify_or_raise,
    verify_program,
)
from repro.apps import scaled_suite
from repro.compiler import compile_circuit
from repro.hardware import build_device
from repro.io import program_from_dict, program_to_dict
from repro.isa.operations import GateOp, MeasureOp, MergeOp, MoveOp, SplitOp
from repro.isa.program import InitialPlacement, QCCDProgram
from repro.obs.metrics import registry, reset_registry
from repro.sim.batch import _merged_predecessors
from repro.sim.engine import _op_records


@pytest.fixture(autouse=True)
def _clean_check_flag():
    """Keep the REPRO_CHECK flag from leaking between tests."""

    saved = os.environ.pop("REPRO_CHECK", None)
    reset_checks()
    yield
    if saved is None:
        os.environ.pop("REPRO_CHECK", None)
    else:
        os.environ["REPRO_CHECK"] = saved
    reset_checks()


def _compile(circuit, topology="L3", capacity=6, reorder="GS"):
    device = build_device(topology, trap_capacity=capacity, gate="FM",
                          reorder=reorder, num_qubits=circuit.num_qubits)
    return compile_circuit(circuit, device), device


def _check_ids(report: Report):
    return set(report.by_check())


# --------------------------------------------------------------------------- #
# Clean suite: zero findings on every golden compile
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("topology", ["L4", "G2x2"])
@pytest.mark.parametrize("reorder", ["GS", "IS"])
def test_clean_suite_has_zero_findings(topology, reorder):
    for name, circuit in scaled_suite(16).items():
        program, device = _compile(circuit, topology=topology,
                                   capacity=6, reorder=reorder)
        verdict = verify_program(program, device)
        assert len(verdict) == 0, \
            f"{name}/{topology}/{reorder}: {verdict.format()}"
        races = detect_races(program)
        assert len(races) == 0, \
            f"{name}/{topology}/{reorder}: {races.format()}"


def test_verifier_without_device_notes_reduced_scope(compiled_qft8):
    program, _ = compiled_qft8
    report = verify_program(program)
    assert report.ok
    assert _check_ids(report) == {"QV000"}
    assert report.count("info") == 1


# --------------------------------------------------------------------------- #
# Mutation corpus: every corruption class is caught
# --------------------------------------------------------------------------- #
def _fresh(qubits=8, topology="L3", capacity=6, reorder="GS"):
    from repro.apps import qft_circuit

    return _compile(qft_circuit(qubits), topology=topology,
                    capacity=capacity, reorder=reorder)


def _pick(rng, program, op_type, predicate=lambda op: True):
    candidates = [op for op in program.operations
                  if isinstance(op, op_type) and predicate(op)]
    assert candidates, f"no {op_type.__name__} in the program"
    return candidates[rng.randrange(len(candidates))]


def test_mutation_capacity_overflow_flags_qv001():
    program, device = _fresh()
    trap = next(iter(program.placement.trap_chains))
    chain = program.placement.trap_chains[trap]
    extra = tuple(range(900, 900 + 7 - len(chain)))
    program.placement.trap_chains[trap] = chain + extra
    for ion in extra:
        program.placement.ion_to_trap[ion] = trap
    report = verify_program(program, device)
    assert "QV001" in _check_ids(report)
    assert not report.ok


def test_mutation_dropped_chain_ion_flags_qv002():
    program, device = _fresh()
    trap = next(iter(program.placement.trap_chains))
    program.placement.trap_chains[trap] = \
        program.placement.trap_chains[trap][:-1]
    report = verify_program(program, device)
    assert "QV002" in _check_ids(report)


def test_mutation_unmerged_transit_ion_flags_qv002():
    program, device = _fresh()
    rng = random.Random(2201)
    merge = _pick(rng, program, MergeOp)
    operations = [op for op in program.operations if op is not merge]
    # Renumber densely, remapping dependencies past the removed op.
    import dataclasses

    removed = merge.op_id
    remap = {}
    rebuilt = []
    for index, op in enumerate(operations):
        remap[op.op_id] = index
        deps = tuple(sorted(remap[d] for d in op.dependencies
                            if d != removed))
        rebuilt.append(dataclasses.replace(op, op_id=index,
                                           dependencies=deps))
    mutated = QCCDProgram(operations=rebuilt, placement=program.placement,
                          circuit_name=program.circuit_name,
                          device_name=program.device_name)
    report = verify_program(mutated, device)
    assert "QV002" in _check_ids(report)


def test_mutation_gate_trap_corruption_flags_qv003():
    program, device = _fresh()
    rng = random.Random(17)
    gate = _pick(rng, program, GateOp)
    other = next(t.name for t in device.topology.traps if t.name != gate.trap)
    object.__setattr__(gate, "trap", other)
    report = verify_program(program, device)
    assert "QV003" in _check_ids(report)


def test_mutation_chain_length_annotation_flags_qv004():
    program, device = _fresh()
    rng = random.Random(23)
    gate = _pick(rng, program, GateOp)
    object.__setattr__(gate, "chain_length", gate.chain_length + 1)
    report = verify_program(program, device)
    assert "QV004" in _check_ids(report)


def test_mutation_split_side_annotation_flags_qv004():
    program, device = _fresh()
    rng = random.Random(29)
    split = _pick(rng, program, SplitOp)
    object.__setattr__(split, "side",
                       "tail" if split.side == "head" else "head")
    report = verify_program(program, device)
    assert "QV004" in _check_ids(report)


def test_mutation_qubit_binding_swap_flags_qv005():
    program, device = _fresh()
    mapping = program.placement.qubit_to_ion
    qubits = sorted(mapping)
    mapping[qubits[0]], mapping[qubits[1]] = \
        mapping[qubits[1]], mapping[qubits[0]]
    report = verify_program(program, device)
    assert "QV005" in _check_ids(report)


def test_mutation_dropped_move_dependency_flags_qv006():
    program, device = _fresh()
    rng = random.Random(31)
    move = _pick(rng, program, MoveOp, lambda op: op.dependencies)
    object.__setattr__(move, "dependencies", ())
    report = verify_program(program, device)
    assert "QV006" in _check_ids(report)


def test_mutation_move_route_corruption_flags_qv007():
    program, device = _fresh(topology="G2x2")
    rng = random.Random(37)
    move = _pick(rng, program, MoveOp)
    nodes = {t.name for t in device.topology.traps}
    bogus = next(name for name in sorted(nodes)
                 if name not in (move.from_node, move.to_node))
    object.__setattr__(move, "to_node", bogus)
    report = verify_program(program, device)
    assert not report.ok
    assert _check_ids(report) & {"QV007", "QV002"}


def test_mutation_dropped_gate_dependency_flags_race():
    program, device = _fresh()
    rng = random.Random(41)
    gate = _pick(rng, program, GateOp,
                 lambda op: len(op.ions) == 2 and op.dependencies)
    object.__setattr__(gate, "dependencies", ())
    races = detect_races(program)
    assert "RC001" in _check_ids(races)
    finding = next(d for d in races if d.check_id == "RC001")
    assert "op" in finding.message and finding.hint


def test_mutation_corrupted_predecessors_flag_rc002_rc003():
    program, _ = _fresh()
    records, _names = _op_records(program)
    merged = list(_merged_predecessors(records))
    rng = random.Random(43)
    victims = [i for i, preds in enumerate(merged) if preds != ()]
    victim = victims[rng.randrange(len(victims))]
    merged[victim] = ()
    races = detect_races(program, predecessors=merged)
    ids = _check_ids(races)
    assert "RC002" in ids or "RC003" in ids
    if records[victim].deps:
        assert "RC003" in ids


# --------------------------------------------------------------------------- #
# Race detector units on hand-built programs
# --------------------------------------------------------------------------- #
def _two_gate_program(with_dep: bool) -> QCCDProgram:
    placement = InitialPlacement(
        qubit_to_ion={0: 0, 1: 1}, ion_to_trap={0: "T0", 1: "T0"},
        trap_chains={"T0": (0, 1)})
    deps = (0,) if with_dep else ()
    operations = [
        GateOp(op_id=0, trap="T0", ions=(0,), qubits=(0,), name="rz",
               chain_length=2),
        GateOp(op_id=1, dependencies=deps, trap="T0", ions=(1,), qubits=(1,),
               name="rz", chain_length=2),
    ]
    return QCCDProgram(operations=operations, placement=placement)


def test_rc001_fires_on_missing_trap_dependency():
    races = detect_races(_two_gate_program(with_dep=False))
    assert _check_ids(races) == {"RC001"}


def test_rc001_silent_with_trap_dependency():
    assert len(detect_races(_two_gate_program(with_dep=True))) == 0


def test_rc003_fires_when_schedule_drops_a_declared_dep():
    program = _two_gate_program(with_dep=True)
    races = detect_races(program, predecessors=[(), ()])
    assert "RC003" in _check_ids(races)


def test_race_detector_rejects_bad_duration_vector():
    with pytest.raises(ValueError):
        detect_races(_two_gate_program(True), durations=[1.0])


# --------------------------------------------------------------------------- #
# Verifier structural behaviour
# --------------------------------------------------------------------------- #
def test_quick_validate_preserves_legacy_unknown_ion_error(compiled_qft8):
    program, _ = compiled_qft8
    rng = random.Random(47)
    gate = _pick(rng, program, GateOp, lambda op: len(op.ions) == 1)
    object.__setattr__(gate, "ions", (999,))
    with pytest.raises(ValueError, match="references unknown ion 999"):
        program.validate()


def test_quick_validate_is_a_report_subset(compiled_qft8):
    program, _ = compiled_qft8
    report = quick_validate(program)
    assert report.ok and len(report) == 0


def test_program_round_trip_then_verify(compiled_qft8, tmp_path):
    program, device = compiled_qft8
    payload = json.loads(json.dumps(program_to_dict(program)))
    rebuilt = program_from_dict(payload)
    assert program_to_dict(rebuilt) == program_to_dict(program)
    assert verify_program(rebuilt, device).ok


def test_program_from_dict_rejects_unknown_kind(compiled_qft8):
    program, _ = compiled_qft8
    payload = program_to_dict(program)
    payload["operations"][0]["kind"] = "teleport"
    with pytest.raises(ValueError, match="unknown operation kind"):
        program_from_dict(payload)


# --------------------------------------------------------------------------- #
# Determinism linter
# --------------------------------------------------------------------------- #
def test_lint_src_repro_is_clean():
    """The CI gate: the shipped package carries zero linter findings."""

    root = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
    report = lint_paths([os.path.normpath(root)])
    assert report.ok and len(report) == 0, report.format()


def test_dt001_flags_module_level_random():
    report = lint_source("import random\nx = random.random()\n", "m.py")
    assert _check_ids(report) == {"DT001"}


def test_dt001_flags_unseeded_constructor_but_not_seeded():
    flagged = lint_source("import random\nr = random.Random()\n", "m.py")
    assert _check_ids(flagged) == {"DT001"}
    clean = lint_source("import random\nr = random.Random(7)\n", "m.py")
    assert len(clean) == 0


def test_dt001_resolves_import_aliases():
    report = lint_source(
        "import random as rnd\nfrom random import shuffle\n"
        "rnd.shuffle([1])\nshuffle([1])\n", "m.py")
    assert report.count("error") == 2


def test_dt002_flags_wall_clock_outside_clock_abstraction():
    report = lint_source("import time\nt = time.time()\n", "m.py")
    assert _check_ids(report) == {"DT002"}
    report = lint_source(
        "from datetime import datetime\nd = datetime.now()\n", "m.py")
    assert _check_ids(report) == {"DT002"}


def test_dt002_exempts_obs_and_lease_clock():
    source = "import time\nt = time.time()\n"
    assert len(lint_source(source, "src/repro/obs/trace.py")) == 0
    clock = ("import time\n"
             "class LeaseClock:\n"
             "    def now(self):\n"
             "        return time.time()\n")
    assert len(lint_source(clock, "m.py")) == 0


def test_dt003_flags_set_iteration_sites():
    looped = lint_source("s = {1, 2}\nfor x in s:\n    pass\n", "m.py")
    assert _check_ids(looped) == {"DT003"}
    comp = lint_source("s = set()\nd = {x: 0 for x in s}\n", "m.py")
    assert _check_ids(comp) == {"DT003"}
    direct = lint_source("d = [x for x in set([1, 2])]\n", "m.py")
    assert _check_ids(direct) == {"DT003"}


def test_dt003_allows_order_insensitive_consumers():
    clean = lint_source(
        "s = {1, 2}\n"
        "a = sorted(s)\n"
        "b = min(q for q in s if q)\n"
        "c = 1 in s\n"
        "n = len(s)\n"
        "for x in sorted(s):\n    pass\n", "m.py")
    assert len(clean) == 0


def test_dt003_reassignment_clears_tracking():
    clean = lint_source("s = {1}\ns = [1]\nfor x in s:\n    pass\n", "m.py")
    assert len(clean) == 0


def test_dt004_requires_schema_version_in_serialization():
    source = ("def result_to_dict(r):\n"
              "    return {'fidelity': r.fidelity}\n")
    report = lint_source(source, "src/repro/io/serialization.py")
    assert _check_ids(report) == {"DT004"}
    assert len(lint_source(source, "src/repro/other/module.py")) == 0
    stamped = ("def result_to_dict(r):\n"
               "    return {'schema_version': 3}\n")
    assert len(lint_source(stamped,
                           "src/repro/io/serialization.py")) == 0


def test_dt005_flags_off_convention_span_names():
    report = lint_source(
        "from repro.obs.trace import span\n"
        "with span('Compile-Stage'):\n    pass\n", "m.py")
    assert _check_ids(report) == {"DT005"}
    assert check_severity("DT005") == "warning"
    assert report.ok  # warnings do not fail a check
    clean = lint_source(
        "from repro.obs.trace import span\n"
        "with span('check.verify'):\n    pass\n", "m.py")
    assert len(clean) == 0


def test_suppression_comment_disables_a_check():
    suppressed = lint_source(
        "import time\n"
        "t = time.time()  # repro: allow DT002\n", "m.py")
    assert len(suppressed) == 0
    line_above = lint_source(
        "import time\n"
        "# repro: allow DT002\n"
        "t = time.time()\n", "m.py")
    assert len(line_above) == 0
    wrong_id = lint_source(
        "import time\n"
        "t = time.time()  # repro: allow DT003\n", "m.py")
    assert _check_ids(wrong_id) == {"DT002"}


def test_lint_reports_syntax_errors_instead_of_crashing():
    report = lint_source("def broken(:\n", "m.py")
    assert not report.ok


# --------------------------------------------------------------------------- #
# Diagnostics plumbing
# --------------------------------------------------------------------------- #
def test_catalogue_covers_every_emitted_check_id():
    assert set(CHECKS) >= {"QV001", "RC001", "DT001"}
    for check_id, (title, severity, _rule) in CHECKS.items():
        assert severity in ("error", "warning", "info")
        assert check_severity(check_id) == severity
        assert title


def test_report_formatting_orders_errors_first():
    report = Report()
    report.add(diag("QV000", "scope note"))
    report.add(diag("QV001", "too many ions", location="op 3", hint="split"))
    text = report.format()
    assert text.index("QV001") < text.index("QV000")
    assert "1 error(s)" in text
    merged = merge_reports([report, Report()])
    assert len(merged) == 2
    payload = merged.to_dict()
    assert payload["ok"] is False
    assert payload["by_check"] == {"QV000": 1, "QV001": 1}


# --------------------------------------------------------------------------- #
# Runtime wiring
# --------------------------------------------------------------------------- #
def test_checks_disabled_by_default():
    assert not checks_enabled()


def test_enable_checks_sets_environment_mirror():
    enable_checks()
    assert checks_enabled()
    assert os.environ["REPRO_CHECK"] == "1"
    enable_checks(False)
    assert not checks_enabled()
    assert "REPRO_CHECK" not in os.environ


def test_env_flag_alone_enables_checks():
    os.environ["REPRO_CHECK"] = "1"
    reset_checks()
    assert checks_enabled()


def test_verify_or_raise_memoizes_per_program(compiled_qft8):
    program, device = compiled_qft8
    reset_registry()
    verify_or_raise(program, device)
    verify_or_raise(program, device)
    assert registry().counter("check.programs").value == 1


def test_verify_or_raise_raises_on_corruption():
    program, device = _fresh()
    rng = random.Random(53)
    gate = _pick(rng, program, GateOp)
    object.__setattr__(gate, "chain_length", gate.chain_length + 3)
    with pytest.raises(StaticAnalysisError) as excinfo:
        verify_or_raise(program, device)
    assert "QV004" in str(excinfo.value)
    assert not excinfo.value.report.ok


def test_compile_under_check_flag_verifies(compiled_qft8):
    from repro.apps import qft_circuit

    enable_checks()
    reset_registry()
    program, device = _fresh()
    assert registry().counter("check.programs").value == 1
    assert getattr(program, "_analyze_ok", None) is program.operations


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
def test_cli_check_src_clean(capsys):
    from repro.cli import main

    root = os.path.normpath(
        os.path.join(os.path.dirname(__file__), "..", "src", "repro"))
    assert main(["check", "--src", root]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_check_src_finds_violation(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert main(["check", "--src", str(bad)]) == 1
    assert "DT002" in capsys.readouterr().out


def test_cli_check_app(capsys):
    from repro.cli import main

    code = main(["check", "--app", "QFT", "--qubits", "8",
                 "--topology", "L3", "--capacity", "6"])
    assert code == 0
    assert "verify qft8" in capsys.readouterr().out


def test_cli_check_program_json(tmp_path, compiled_qft8, capsys):
    from repro.cli import main
    from repro.io import save_json

    program, _ = compiled_qft8
    path = tmp_path / "prog.json"
    save_json(program_to_dict(program), path)
    assert main(["check", "--program", str(path)]) == 0
    assert "QV000" in capsys.readouterr().out  # device-free scope note

    payload = program_to_dict(program)
    trap = next(iter(payload["placement"]["trap_chains"]))
    payload["placement"]["trap_chains"][trap] = \
        payload["placement"]["trap_chains"][trap] + [900, 901, 902]
    for ion in (900, 901, 902):
        payload["placement"]["ion_to_trap"][str(ion)] = trap
    corrupt = tmp_path / "corrupt.json"
    save_json(payload, corrupt)
    assert main(["check", "--program", str(corrupt)]) == 1


def test_cli_check_requires_a_mode():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["check"])


def test_cli_check_output_json(tmp_path, capsys):
    from repro.cli import main
    from repro.io import load_json

    out = tmp_path / "findings.json"
    root = os.path.normpath(
        os.path.join(os.path.dirname(__file__), "..", "src", "repro"))
    assert main(["check", "--src", root, "--output", str(out)]) == 0
    payload = load_json(out)
    assert payload["ok"] is True
    assert payload["schema_version"] >= 3
    assert payload["sections"][0]["counts"]["error"] == 0


def test_cli_run_check_flag(capsys):
    from repro.cli import main

    code = main(["run", "--app", "QFT", "--qubits", "8",
                 "--topology", "L3", "--capacity", "6", "--check"])
    assert code == 0

"""Unit tests for the application circuit generators (Table II suite)."""

import pytest

from repro.apps import (
    bernstein_vazirani_circuit,
    cuccaro_adder_circuit,
    qaoa_circuit,
    qft_circuit,
    squareroot_circuit,
    supremacy_circuit,
)
from repro.apps.qaoa import qaoa_maxcut_ring_circuit
from repro.ir.gate import GateKind


class TestQFT:
    def test_two_qubit_gate_count_formula(self):
        # n*(n-1) two-qubit gates: each of the n*(n-1)/2 controlled phases
        # decomposes into two CX gates.
        for n in (4, 8, 16):
            assert qft_circuit(n).num_two_qubit_gates == n * (n - 1)

    def test_paper_instance(self):
        circuit = qft_circuit(64)
        assert circuit.num_qubits == 64
        assert circuit.num_two_qubit_gates == 4032

    def test_all_pairs_interact(self):
        circuit = qft_circuit(6)
        pairs = set(circuit.interaction_counts())
        expected = {(a, b) for a in range(6) for b in range(a + 1, 6)}
        assert pairs == expected

    def test_with_swaps_adds_gates(self):
        assert qft_circuit(8, with_swaps=True).num_two_qubit_gates > \
            qft_circuit(8).num_two_qubit_gates

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            qft_circuit(1)


class TestBV:
    def test_paper_instance(self):
        circuit = bernstein_vazirani_circuit(64)
        assert circuit.num_qubits == 64
        assert circuit.num_two_qubit_gates == 63

    def test_secret_controls_gate_count(self):
        circuit = bernstein_vazirani_circuit(8, secret=[1, 0, 1, 0, 1, 0, 1])
        assert circuit.num_two_qubit_gates == 4

    def test_all_gates_target_ancilla(self):
        circuit = bernstein_vazirani_circuit(8)
        ancilla = 7
        assert all(pair[1] == ancilla for pair in circuit.two_qubit_pairs())

    def test_secret_length_validation(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(8, secret=[1, 1])

    def test_secret_bits_validation(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit(4, secret=[1, 2, 0])


class TestAdder:
    def test_paper_scale_instance(self):
        circuit = cuccaro_adder_circuit(64)
        assert circuit.num_qubits == 64
        # 16n + 1 with n = 31
        assert circuit.num_two_qubit_gates == 16 * 31 + 1

    def test_small_instance_count(self):
        assert cuccaro_adder_circuit(8).num_two_qubit_gates == 16 * 3 + 1

    def test_short_range_pattern(self):
        circuit = cuccaro_adder_circuit(16)
        assert circuit.mean_interaction_distance() < 3.0

    def test_even_qubits_required(self):
        with pytest.raises(ValueError):
            cuccaro_adder_circuit(9)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            cuccaro_adder_circuit(4)


class TestQAOA:
    def test_paper_instance(self):
        circuit = qaoa_circuit(64, layers=20)
        assert circuit.num_qubits == 64
        assert circuit.num_two_qubit_gates == 63 * 20 == 1260

    def test_nearest_neighbour_only(self):
        circuit = qaoa_circuit(10, layers=2)
        assert all(abs(a - b) == 1 for a, b in circuit.two_qubit_pairs())

    def test_layer_scaling(self):
        assert qaoa_circuit(8, layers=4).num_two_qubit_gates == 7 * 4

    def test_custom_angles(self):
        circuit = qaoa_circuit(4, layers=2, gammas=[0.1, 0.2], betas=[0.3, 0.4])
        assert circuit.num_two_qubit_gates == 6

    def test_angle_length_validation(self):
        with pytest.raises(ValueError):
            qaoa_circuit(4, layers=2, gammas=[0.1], betas=[0.3, 0.4])

    def test_ring_variant_adds_wraparound(self):
        ring = qaoa_maxcut_ring_circuit(8, layers=2)
        assert ring.num_two_qubit_gates == qaoa_circuit(8, 2).num_two_qubit_gates + 2
        assert (0, 7) in ring.interaction_counts()


class TestSupremacy:
    def test_paper_instance(self):
        circuit = supremacy_circuit(64, cycles=20)
        assert circuit.num_qubits == 64
        assert circuit.num_two_qubit_gates == 560

    def test_grid_nearest_neighbour_pattern(self):
        circuit = supremacy_circuit(16, cycles=4)  # 4x4 grid
        for a, b in circuit.two_qubit_pairs():
            assert abs(a - b) in (1, 4)

    def test_deterministic_for_fixed_seed(self):
        a = supremacy_circuit(9, cycles=4, seed=7)
        b = supremacy_circuit(9, cycles=4, seed=7)
        assert [g.name for g in a.gates] == [g.name for g in b.gates]

    def test_seed_changes_single_qubit_layers(self):
        a = supremacy_circuit(9, cycles=4, seed=1)
        b = supremacy_circuit(9, cycles=4, seed=2)
        assert [g.name for g in a.gates] != [g.name for g in b.gates]
        # but the entangling structure is identical
        assert a.two_qubit_pairs() == b.two_qubit_pairs()

    def test_every_qubit_touched(self):
        circuit = supremacy_circuit(12, cycles=4)
        assert circuit.qubits_used() == list(range(12))


class TestSquareRoot:
    def test_paper_instance_size(self):
        circuit = squareroot_circuit(40)
        assert circuit.num_qubits == 78
        # around a thousand CX gates (paper reports 1028 for its instance)
        assert 800 <= circuit.num_two_qubit_gates <= 1200

    def test_short_and_long_range_mix(self):
        circuit = squareroot_circuit(10)
        distances = circuit.communication_distance_histogram()
        assert min(distances) <= 2
        assert max(distances) >= 8

    def test_only_native_gates(self):
        circuit = squareroot_circuit(6)
        for gate in circuit.gates:
            assert gate.kind in (GateKind.SINGLE_QUBIT, GateKind.TWO_QUBIT)

    def test_iterations_scale_gate_count(self):
        one = squareroot_circuit(6, iterations=1).num_two_qubit_gates
        two = squareroot_circuit(6, iterations=2).num_two_qubit_gates
        assert two == 2 * one

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            squareroot_circuit(2)

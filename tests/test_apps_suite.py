"""Unit tests for the Table II suite helpers."""

import pytest

from repro.apps.suite import (
    APPLICATION_NAMES,
    PAPER_TABLE2,
    application_summary,
    build_application,
    scaled_suite,
)
from repro.toolflow.tables import format_table2_text, table1, table2


class TestBuildApplication:
    def test_all_names_buildable_small(self):
        for name in APPLICATION_NAMES:
            circuit = build_application(name, num_qubits=12)
            assert circuit.num_two_qubit_gates > 0

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_application("Shor")

    def test_default_sizes_match_paper_qubits(self):
        for name in ("QFT", "QAOA", "Supremacy", "Adder", "BV"):
            assert build_application(name).num_qubits == PAPER_TABLE2[name]["qubits"]

    def test_squareroot_default_size(self):
        assert build_application("SquareRoot").num_qubits == 78


class TestScaledSuite:
    def test_keys_match_application_names(self):
        suite = scaled_suite(12)
        assert set(suite) == set(APPLICATION_NAMES)

    def test_sizes_bounded(self):
        suite = scaled_suite(12)
        for circuit in suite.values():
            assert circuit.num_qubits <= 13

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            scaled_suite(4)


class TestSummaries:
    def test_application_summary_rows(self):
        rows = application_summary(scaled_suite(12))
        assert len(rows) == len(APPLICATION_NAMES)
        for row in rows:
            assert row["two_qubit_gates"] > 0
            assert row["paper_qubits"] > 0

    def test_table1_values(self):
        rows = table1()
        assert rows["Move ion through one segment"] == 5.0
        assert rows["Crossing X-junction"] == 120.0

    def test_table2_uses_custom_suite(self):
        rows = table2(scaled_suite(12))
        assert all(row["qubits"] <= 13 for row in rows)

    def test_format_table2_text(self):
        text = format_table2_text(scaled_suite(12))
        for name in APPLICATION_NAMES:
            assert name in text

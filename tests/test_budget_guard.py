"""Wall-time budget guard: the compile+simulate hot path must stay fast.

The budget (default 0.5 s, ~50x headroom over the optimized pipeline) guards
against *algorithmic* regressions -- an accidental O(n^2) in the scheduler,
router or engine trips it long before CI noise does.  Also invocable as
``python -m repro check-budget`` and ``python benchmarks/check_budget.py``.
"""

from __future__ import annotations

import pytest

from repro.toolflow.budget import DEFAULT_BUDGET_S, check_budget, resolve_budget


@pytest.mark.budget
def test_quickstart_unit_within_budget():
    outcome = check_budget()
    assert outcome["ok"], (
        f"quickstart compile+simulate took {outcome['elapsed_s']:.3f}s, over the "
        f"{outcome['budget_s']:.2f}s budget -- the hot path regressed"
    )


def test_resolve_budget_precedence(monkeypatch):
    assert resolve_budget(2.0) == 2.0
    monkeypatch.setenv("REPRO_BUDGET_S", "1.25")
    assert resolve_budget() == 1.25
    monkeypatch.delenv("REPRO_BUDGET_S")
    assert resolve_budget() == DEFAULT_BUDGET_S

"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for command in ("info", "table1", "table2", "run", "sweep", "device"):
            args = parser.parse_args([command] if command not in ("run", "sweep")
                                     else {"run": ["run", "--app", "BV"],
                                           "sweep": ["sweep", "--figure", "6"]}[command])
            assert args.command == command

    def test_run_requires_app(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])
        capsys.readouterr()

    def test_invalid_gate_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "BV", "--gate", "XY"])
        capsys.readouterr()


class TestCommands:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "QCCDSim" in out
        assert "QAOA" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Crossing X-junction" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--small"]) == 0
        out = capsys.readouterr().out
        assert "Supremacy" in out
        assert "Communication pattern" in out

    def test_device(self, capsys):
        assert main(["device", "--topology", "G2x3", "--capacity", "18"]) == 0
        out = capsys.readouterr().out
        assert "6 traps" in out
        assert "J1" in out

    def test_run_small_app(self, capsys, tmp_path):
        output = tmp_path / "bv.json"
        code = main(["run", "--app", "BV", "--qubits", "12",
                     "--topology", "L3", "--capacity", "8",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Application fidelity" in out
        assert output.exists()
        payload = json.loads(output.read_text())
        assert 0.0 <= payload["fidelity"] <= 1.0

    def test_run_with_am2_is(self, capsys):
        code = main(["run", "--app", "Adder", "--qubits", "12",
                     "--topology", "L3", "--capacity", "8",
                     "--gate", "AM2", "--reorder", "IS"])
        assert code == 0
        assert "Shuttles" in capsys.readouterr().out

    def test_sweep_figure6_small(self, capsys, tmp_path):
        output = tmp_path / "fig6.json"
        code = main(["sweep", "--figure", "6", "--small", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6 series" in out
        payload = json.loads(output.read_text())
        assert payload["capacities"] == [6, 8, 10]

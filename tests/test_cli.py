"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for command in ("info", "table1", "table2", "run", "sweep", "device"):
            args = parser.parse_args([command] if command not in ("run", "sweep")
                                     else {"run": ["run", "--app", "BV"],
                                           "sweep": ["sweep", "--figure", "6"]}[command])
            assert args.command == command

    def test_run_requires_app(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])
        capsys.readouterr()

    def test_invalid_gate_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "BV", "--gate", "XY"])
        capsys.readouterr()


class TestCommands:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "QCCDSim" in out
        assert "QAOA" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Crossing X-junction" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--small"]) == 0
        out = capsys.readouterr().out
        assert "Supremacy" in out
        assert "Communication pattern" in out

    def test_device(self, capsys):
        assert main(["device", "--topology", "G2x3", "--capacity", "18"]) == 0
        out = capsys.readouterr().out
        assert "6 traps" in out
        assert "J1" in out

    def test_run_small_app(self, capsys, tmp_path):
        output = tmp_path / "bv.json"
        code = main(["run", "--app", "BV", "--qubits", "12",
                     "--topology", "L3", "--capacity", "8",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Application fidelity" in out
        assert output.exists()
        payload = json.loads(output.read_text())
        assert 0.0 <= payload["fidelity"] <= 1.0

    def test_run_with_am2_is(self, capsys):
        code = main(["run", "--app", "Adder", "--qubits", "12",
                     "--topology", "L3", "--capacity", "8",
                     "--gate", "AM2", "--reorder", "IS"])
        assert code == 0
        assert "Shuttles" in capsys.readouterr().out

    def test_sweep_figure6_small(self, capsys, tmp_path):
        output = tmp_path / "fig6.json"
        code = main(["sweep", "--figure", "6", "--small", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6 series" in out
        payload = json.loads(output.read_text())
        assert payload["capacities"] == [6, 8, 10]

    def test_sweep_store_resumes_with_identical_series(self, capsys, tmp_path):
        store = tmp_path / "store"
        args = ["sweep", "--figure", "6", "--small", "--store", str(store)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        # The replayed run prints the same series bit-for-bit.
        assert [line for line in first.splitlines() if line.startswith("  ")] == \
            [line for line in second.splitlines() if line.startswith("  ")]
        assert store.exists()


class TestOutputFailures:
    """--output must create parents and exit non-zero on write failure."""

    def test_output_creates_missing_parents(self, capsys, tmp_path):
        output = tmp_path / "deeply" / "nested" / "dirs" / "bv.json"
        code = main(["run", "--app", "BV", "--qubits", "12",
                     "--topology", "L3", "--capacity", "8",
                     "--output", str(output)])
        assert code == 0
        assert output.exists()
        capsys.readouterr()

    @pytest.fixture
    def blocked_path(self, tmp_path):
        """A path whose parent is a regular file, so writes must fail."""

        blocker = tmp_path / "blocker"
        blocker.write_text("")
        return blocker / "out.json"

    def test_run_output_failure_is_nonzero(self, capsys, blocked_path):
        code = main(["run", "--app", "BV", "--qubits", "12",
                     "--topology", "L3", "--capacity", "8",
                     "--output", str(blocked_path)])
        assert code == 1
        assert "cannot write" in capsys.readouterr().err

    def test_sweep_output_failure_is_nonzero(self, capsys, blocked_path):
        code = main(["sweep", "--figure", "6", "--small",
                     "--output", str(blocked_path)])
        assert code == 1
        assert "cannot write" in capsys.readouterr().err

    def test_dse_export_output_failure_is_nonzero(self, capsys, tmp_path,
                                                  blocked_path):
        store = tmp_path / "store"
        assert main(["dse", "run", "--apps", "BV", "--qubits", "10",
                     "--topologies", "L3", "--capacities", "6",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        code = main(["dse", "export", "--store", str(store),
                     "--output", str(blocked_path)])
        assert code == 1
        assert "cannot write" in capsys.readouterr().err


class TestDseCommands:
    def _run_args(self, store):
        return ["dse", "run", "--apps", "QFT,BV", "--qubits", "10",
                "--topologies", "L3", "--capacities", "6,8",
                "--gates", "AM1,FM", "--reorders", "GS",
                "--store", str(store)]

    def test_dse_run_and_resume(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(self._run_args(store)) == 0
        first = capsys.readouterr().out
        assert "Evaluated 8 points, replayed 0" in first
        assert "Best point" in first
        assert main(self._run_args(store)) == 0
        second = capsys.readouterr().out
        assert "Evaluated 0 points, replayed 8" in second

    def test_dse_run_sharded_then_status(self, capsys, tmp_path):
        store = tmp_path / "store"
        for shard in ("1/2", "2/2"):
            assert main(self._run_args(store) + ["--shard", shard]) == 0
        capsys.readouterr()
        assert main(["dse", "status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "8 evaluated points" in out
        assert "shard-1of2.jsonl" in out and "shard-2of2.jsonl" in out

    def test_dse_run_random_strategy_with_output(self, capsys, tmp_path):
        output = tmp_path / "result.json"
        assert main(["dse", "run", "--apps", "BV", "--qubits", "10",
                     "--topologies", "L3", "--capacities", "6,8",
                     "--strategy", "random", "--samples", "1", "--seed", "3",
                     "--output", str(output)]) == 0
        capsys.readouterr()
        payload = json.loads(output.read_text())
        assert payload["strategy"]["name"] == "random"
        assert len(payload["records"]) == 1
        assert payload["space"]["apps"] == ["BV"]

    def test_dse_pareto_and_export(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(self._run_args(store)) == 0
        capsys.readouterr()
        assert main(["dse", "pareto", "--store", str(store),
                     "--app", "bv10"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier for bv10" in out
        export = tmp_path / "export.json"
        assert main(["dse", "export", "--store", str(store),
                     "--output", str(export)]) == 0
        capsys.readouterr()
        payload = json.loads(export.read_text())
        assert payload["num_points"] == 8
        assert len(payload["rows"]) == 8

    def test_dse_pareto_unknown_app_fails(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(["dse", "run", "--apps", "BV", "--qubits", "10",
                     "--topologies", "L3", "--capacities", "6",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["dse", "pareto", "--store", str(store),
                     "--app", "nope"]) == 1
        assert "no points" in capsys.readouterr().err

    def test_dse_status_with_space_reports_pending(self, capsys, tmp_path):
        store = tmp_path / "store"
        spec = tmp_path / "space.json"
        spec.write_text(json.dumps({
            "apps": ["BV"], "qubits": [10], "topologies": ["L3"],
            "capacities": [6, 8]}))
        assert main(["dse", "run", "--space", str(spec), "--store", str(store),
                     "--strategy", "random", "--samples", "1"]) == 0
        capsys.readouterr()
        assert main(["dse", "status", "--store", str(store),
                     "--space", str(spec)]) == 0
        assert "1/2 points completed, 1 pending" in capsys.readouterr().out

    def test_bare_dse_is_usage_error(self, capsys):
        assert main(["dse"]) == 1
        assert "usage: repro dse" in capsys.readouterr().err

    def test_dse_run_requires_space_or_apps(self, capsys):
        with pytest.raises(SystemExit):
            main(["dse", "run"])
        capsys.readouterr()

    def test_dse_adaptive_shard_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["dse", "run", "--apps", "BV", "--qubits", "10",
                  "--topologies", "L3", "--capacities", "6,8",
                  "--strategy", "greedy", "--shard", "1/2"])
        capsys.readouterr()

"""Unit and integration tests for the top-level compilation pass."""

import pytest

from repro.compiler import compile_circuit
from repro.compiler.compile import CompilerOptions
from repro.hardware import build_device
from repro.ir.circuit import Circuit
from repro.isa.operations import GateOp, MeasureOp, OpKind


class TestBasicCompilation:
    def test_local_circuit_needs_no_communication(self, bell_circuit):
        device = build_device("L2", trap_capacity=6, num_qubits=2)
        program = compile_circuit(bell_circuit, device)
        assert program.num_communication_ops == 0
        assert program.num_two_qubit_gates == 1
        assert program.count(OpKind.GATE_1Q) == 1

    def test_cross_trap_gate_inserts_shuttle(self):
        device = build_device("L2", trap_capacity=4, num_qubits=4)
        circuit = Circuit(4, name="cross")
        # First-use order places {0,1} in T0 and {2,3} in T1, so the last gate
        # spans two traps and must trigger a shuttle.
        circuit.add("cx", 0, 1)
        circuit.add("cx", 2, 3)
        circuit.add("cx", 0, 3)
        program = compile_circuit(circuit, device)
        assert program.num_shuttles >= 1
        assert program.count(OpKind.MERGE) >= 1
        assert program.num_two_qubit_gates == 3

    def test_two_qubit_gate_annotations_are_consistent(self, compiled_qft8):
        program, device = compiled_qft8
        capacities = device.trap_capacities()
        for op in program.operations:
            if isinstance(op, GateOp) and op.is_two_qubit:
                assert 2 <= op.chain_length <= capacities[op.trap] + 1
                assert 0 <= op.ion_distance <= op.chain_length - 2

    def test_dependencies_reference_earlier_ops(self, compiled_qft8):
        program, _ = compiled_qft8
        for op in program.operations:
            assert all(dep < op.op_id for dep in op.dependencies)

    def test_placement_covers_all_qubits(self, compiled_qft8):
        program, _ = compiled_qft8
        assert sorted(program.placement.qubit_to_ion) == list(range(8))

    def test_all_circuit_gates_emitted(self, qft8, compiled_qft8):
        program, _ = compiled_qft8
        assert program.count(OpKind.GATE_2Q) == qft8.num_two_qubit_gates
        assert program.count(OpKind.GATE_1Q) == qft8.num_single_qubit_gates

    def test_measurements_compiled(self):
        device = build_device("L2", trap_capacity=6, num_qubits=4)
        circuit = Circuit(4).add("cx", 0, 1).add("measure", 0).add("measure", 1)
        program = compile_circuit(circuit, device)
        assert program.count(OpKind.MEASURE) == 2
        assert all(isinstance(op, MeasureOp) for op in program.operations
                   if op.kind is OpKind.MEASURE)

    def test_swap_lowering(self):
        device = build_device("L2", trap_capacity=6, num_qubits=2)
        circuit = Circuit(2).add("swap", 0, 1)
        program = compile_circuit(circuit, device)
        assert program.num_two_qubit_gates == 3

    def test_barrier_is_dropped(self):
        device = build_device("L2", trap_capacity=6, num_qubits=2)
        circuit = Circuit(2)
        circuit.add("h", 0)
        circuit.append(type(circuit[0])("barrier", (0, 1)))
        program = compile_circuit(circuit, device)
        assert len(program) == 1

    def test_circuit_too_large_rejected(self):
        device = build_device("L2", trap_capacity=4, num_qubits=4)
        with pytest.raises(ValueError):
            compile_circuit(Circuit(10), device)


class TestReorderMethods:
    def test_gs_produces_swap_gates_only(self, qft8):
        device = build_device("L3", trap_capacity=6, num_qubits=8, reorder="GS")
        program = compile_circuit(qft8, device)
        assert program.count(OpKind.ION_SWAP) == 0

    def test_is_produces_ion_swaps_only(self, qft8):
        device = build_device("L3", trap_capacity=6, num_qubits=8, reorder="IS")
        program = compile_circuit(qft8, device)
        assert program.count(OpKind.SWAP_GATE) == 0

    def test_reorder_method_does_not_change_app_gates(self, qft8):
        gs_device = build_device("L3", trap_capacity=6, num_qubits=8, reorder="GS")
        is_device = build_device("L3", trap_capacity=6, num_qubits=8, reorder="IS")
        gs_program = compile_circuit(qft8, gs_device)
        is_program = compile_circuit(qft8, is_device)
        assert gs_program.count(OpKind.GATE_2Q) == is_program.count(OpKind.GATE_2Q)


class TestOptions:
    def test_unknown_mapping_rejected(self, qft8):
        device = build_device("L3", trap_capacity=6, num_qubits=8)
        with pytest.raises(ValueError):
            compile_circuit(qft8, device, CompilerOptions(mapping="magic"))

    def test_alternative_mappings_compile(self, qft8):
        device = build_device("L3", trap_capacity=6, num_qubits=8)
        for mapping in ("greedy", "round_robin", "interaction_aware"):
            program = compile_circuit(qft8, device, CompilerOptions(mapping=mapping))
            assert program.count(OpKind.GATE_2Q) == qft8.num_two_qubit_gates

    def test_routing_policies_compile(self, qft8):
        device = build_device("L3", trap_capacity=6, num_qubits=8)
        for routing in ("affinity", "space", "fixed"):
            program = compile_circuit(qft8, device, CompilerOptions(routing=routing))
            # Whatever the policy, every application gate is emitted and the
            # non-local ones triggered at least some communication.
            assert program.count(OpKind.GATE_2Q) == qft8.num_two_qubit_gates
            assert program.num_shuttles > 0

    def test_unknown_routing_rejected(self, qft8):
        device = build_device("L3", trap_capacity=6, num_qubits=8)
        with pytest.raises(ValueError):
            compile_circuit(qft8, device, CompilerOptions(routing="teleport"))

    def test_metadata_recorded(self, compiled_qft8):
        program, device = compiled_qft8
        assert program.metadata["gate"] == device.gate.value
        assert program.metadata["num_program_qubits"] == 8


class TestTopologies:
    @pytest.mark.parametrize("topology", ["L2", "L4", "G2x2", "G2x3", "R4"])
    def test_compiles_on_every_topology(self, topology, qaoa8):
        device = build_device(topology, trap_capacity=6, num_qubits=8)
        program = compile_circuit(qaoa8, device)
        assert program.count(OpKind.GATE_2Q) == qaoa8.num_two_qubit_gates

    def test_grid_uses_junctions_linear_does_not(self, qft8):
        linear = build_device("L3", trap_capacity=6, num_qubits=8)
        grid = build_device("G2x2", trap_capacity=6, num_qubits=8)
        linear_program = compile_circuit(qft8, linear)
        grid_program = compile_circuit(qft8, grid)
        assert linear_program.count(OpKind.JUNCTION) == 0
        assert grid_program.count(OpKind.JUNCTION) > 0

"""Unit tests for the initial mapping heuristics."""

import pytest

from repro.compiler.mapping import (
    MAPPING_STRATEGIES,
    first_use_order,
    greedy_mapping,
    interaction_aware_mapping,
    round_robin_mapping,
)
from repro.hardware import build_device
from repro.ir.circuit import Circuit


@pytest.fixture
def device():
    return build_device("L3", trap_capacity=5, num_qubits=9, buffer_ions=2)


class TestFirstUseOrder:
    def test_order_follows_gate_sequence(self):
        circuit = Circuit(4)
        circuit.add("cx", 2, 3)
        circuit.add("cx", 0, 1)
        assert first_use_order(circuit) == [2, 3, 0, 1]

    def test_unused_qubits_appended(self):
        circuit = Circuit(4)
        circuit.add("h", 2)
        assert first_use_order(circuit) == [2, 0, 1, 3]

    def test_no_duplicates(self, qft8):
        order = first_use_order(qft8)
        assert sorted(order) == list(range(8))


class TestGreedyMapping:
    def test_fills_traps_in_order(self, device):
        circuit = Circuit(9)
        for qubit in range(8):
            circuit.add("cx", qubit, qubit + 1)
        state = greedy_mapping(circuit, device)
        # capacity 5 with buffer 2 -> 3 qubits per trap
        assert state.occupancy() == {"T0": 3, "T1": 3, "T2": 3}
        assert state.trap_of_qubit(0) == "T0"
        assert state.trap_of_qubit(8) == "T2"

    def test_respects_buffer(self, device):
        circuit = Circuit(9)
        state = greedy_mapping(circuit, device)
        for trap in device.topology.traps:
            assert state.free_space(trap.name) >= device.buffer_ions

    def test_rejects_oversized_circuit(self, device):
        with pytest.raises(ValueError):
            greedy_mapping(Circuit(10), device)

    def test_colocates_interacting_neighbours(self, device):
        """Nearest-neighbour circuits should need little communication."""

        circuit = Circuit(9)
        for qubit in range(8):
            circuit.add("cx", qubit, qubit + 1)
        state = greedy_mapping(circuit, device)
        cross = sum(1 for a, b in circuit.two_qubit_pairs()
                    if state.trap_of_qubit(a) != state.trap_of_qubit(b))
        assert cross == 2  # only the two trap-boundary edges


class TestOtherStrategies:
    def test_round_robin_spreads_qubits(self, device):
        circuit = Circuit(6)
        state = round_robin_mapping(circuit, device)
        assert set(state.occupancy().values()) == {2}

    def test_interaction_aware_groups_cliques(self, device):
        circuit = Circuit(6)
        # Two tight triangles: {0,1,2} and {3,4,5}.
        for a, b in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]:
            for _ in range(3):
                circuit.add("cz", a, b)
        state = interaction_aware_mapping(circuit, device)
        first_triangle = {state.trap_of_qubit(q) for q in (0, 1, 2)}
        second_triangle = {state.trap_of_qubit(q) for q in (3, 4, 5)}
        assert len(first_triangle) == 1
        assert len(second_triangle) == 1

    def test_registry_contains_all(self):
        assert set(MAPPING_STRATEGIES) == {"greedy", "round_robin", "interaction_aware"}

    def test_all_strategies_place_every_qubit(self, device, qft8):
        for strategy in MAPPING_STRATEGIES.values():
            state = strategy(qft8, device)
            for qubit in range(qft8.num_qubits):
                assert state.trap_of_qubit(qubit) is not None
            state.validate()

"""Unit tests for TrapChain and PlacementState."""

import pytest

from repro.compiler.placement_state import PlacementState, TrapChain
from repro.hardware import build_device


class TestTrapChain:
    def test_insert_and_order(self):
        chain = TrapChain("T0", 5)
        chain.insert(1, "tail")
        chain.insert(2, "tail")
        chain.insert(3, "head")
        assert chain.ions == (3, 1, 2)

    def test_capacity_enforced(self):
        chain = TrapChain("T0", 2, [1, 2])
        with pytest.raises(ValueError):
            chain.insert(3, "tail")

    def test_overfill_allowed_when_requested(self):
        chain = TrapChain("T0", 2, [1, 2])
        chain.insert(3, "tail", allow_overfill=True)
        assert len(chain) == 3
        with pytest.raises(ValueError):
            chain.insert(4, "tail", allow_overfill=True)

    def test_duplicate_ion_rejected(self):
        chain = TrapChain("T0", 5, [1])
        with pytest.raises(ValueError):
            chain.insert(1, "tail")

    def test_remove_returns_index(self):
        chain = TrapChain("T0", 5, [4, 5, 6])
        assert chain.remove(5) == 1
        assert chain.ions == (4, 6)

    def test_index_and_distance(self):
        chain = TrapChain("T0", 5, [7, 8, 9, 10])
        assert chain.index_of(9) == 2
        assert chain.distance_between(7, 10) == 2
        assert chain.distance_between(8, 9) == 0

    def test_unknown_ion(self):
        with pytest.raises(KeyError):
            TrapChain("T0", 5, [1]).index_of(9)

    def test_end_helpers(self):
        chain = TrapChain("T0", 5, [1, 2, 3])
        assert chain.ion_at_end("head") == 1
        assert chain.ion_at_end("tail") == 3
        assert chain.end_index("tail") == 2

    def test_ion_at_end_empty(self):
        with pytest.raises(ValueError):
            TrapChain("T0", 5).ion_at_end("head")

    def test_swap_adjacent(self):
        chain = TrapChain("T0", 5, [1, 2, 3])
        chain.swap_adjacent(1, 2)
        assert chain.ions == (2, 1, 3)

    def test_swap_non_adjacent_rejected(self):
        chain = TrapChain("T0", 5, [1, 2, 3])
        with pytest.raises(ValueError):
            chain.swap_adjacent(1, 3)

    def test_free_space(self):
        assert TrapChain("T0", 5, [1, 2]).free_space == 3


class TestPlacementState:
    @pytest.fixture
    def device(self):
        return build_device("L3", trap_capacity=4, num_qubits=6)

    @pytest.fixture
    def state(self, device):
        state = PlacementState(device)
        for qubit in range(4):
            state.load_ion(qubit, "T0" if qubit < 2 else "T1", qubit)
        return state

    def test_loading(self, state):
        assert state.trap_of_qubit(0) == "T0"
        assert state.trap_of_qubit(3) == "T1"
        assert state.occupancy() == {"T0": 2, "T1": 2, "T2": 0}

    def test_double_load_rejected(self, state):
        with pytest.raises(ValueError):
            state.load_ion(0, "T2", 0)

    def test_load_into_full_trap_rejected(self, device):
        state = PlacementState(device)
        for ion in range(4):
            state.load_ion(ion, "T0", ion)
        with pytest.raises(ValueError):
            state.load_ion(4, "T0", 4)

    def test_split_and_merge_cycle(self, state):
        state.split("T0", 1)
        assert state.trap_of_ion(1) is None
        state.merge("T2", 1, "tail")
        assert state.trap_of_ion(1) == "T2"
        assert state.trap_of_qubit(1) == "T2"
        state.validate()

    def test_merge_requires_transit(self, state):
        with pytest.raises(ValueError):
            state.merge("T2", 0, "tail")

    def test_swap_states_rebinds_qubits(self, state):
        state.swap_states(0, 1)
        assert state.ion_of_qubit(0) == 1
        assert state.ion_of_qubit(1) == 0
        assert state.qubit_of_ion(0) == 1
        state.validate()

    def test_swap_positions(self, state):
        state.swap_positions("T0", 0, 1)
        assert state.chain("T0").ions == (1, 0)
        state.validate()

    def test_unknown_qubit(self, state):
        with pytest.raises(KeyError):
            state.ion_of_qubit(99)

    def test_snapshot_placement(self, state):
        placement = state.snapshot_placement()
        assert placement.qubit_to_ion == {0: 0, 1: 1, 2: 2, 3: 3}
        assert placement.trap_chains["T0"] == (0, 1)
        assert placement.trap_of_qubit(2) == "T1"
        assert placement.occupancy()["T1"] == 2

    def test_free_space(self, state):
        assert state.free_space("T0") == 2
        assert state.free_space("T2") == 4

    def test_validate_catches_corruption(self, state):
        # Simulate a bookkeeping bug: an ion recorded in a trap it is not in.
        state._ion_trap[0] = "T2"
        with pytest.raises(AssertionError):
            state.validate()

"""Unit tests for chain reordering and routing decisions."""

import pytest

from repro.compiler.builder import ProgramBuilder
from repro.compiler.placement_state import PlacementState
from repro.compiler.reorder import reorder_to_end
from repro.compiler.routing import Router
from repro.hardware import build_device
from repro.isa.operations import IonSwapOp, SwapGateOp


def make_state(device, layout):
    """layout: {trap_name: [qubit, ...]} with ion id == qubit id."""

    state = PlacementState(device)
    for trap_name, qubits in layout.items():
        for qubit in qubits:
            state.load_ion(qubit, trap_name, qubit)
    return state


class TestReorderGS:
    @pytest.fixture
    def device(self):
        return build_device("L2", trap_capacity=6, num_qubits=8, reorder="GS")

    def test_no_reorder_when_already_at_end(self, device):
        state = make_state(device, {"T0": [0, 1, 2]})
        builder = ProgramBuilder()
        assert reorder_to_end(builder, state, device, 2, "T0", "tail") == 0
        assert len(builder) == 0

    def test_single_swap_to_any_end(self, device):
        state = make_state(device, {"T0": [0, 1, 2, 3]})
        builder = ProgramBuilder()
        emitted = reorder_to_end(builder, state, device, 1, "T0", "tail")
        assert emitted == 1
        op = builder.operations[0]
        assert isinstance(op, SwapGateOp)
        assert op.ion_distance == 1  # ions 1 and 3 have one ion between them
        # The qubit's state now lives on the tail ion; the chain order is fixed.
        assert state.ion_of_qubit(1) == 3
        assert state.chain("T0").ions == (0, 1, 2, 3)

    def test_swap_to_head(self, device):
        state = make_state(device, {"T0": [0, 1, 2, 3]})
        builder = ProgramBuilder()
        reorder_to_end(builder, state, device, 2, "T0", "head")
        assert state.ion_of_qubit(2) == 0

    def test_wrong_trap_rejected(self, device):
        state = make_state(device, {"T0": [0, 1], "T1": [2]})
        with pytest.raises(ValueError):
            reorder_to_end(ProgramBuilder(), state, device, 2, "T0", "tail")


class TestReorderIS:
    @pytest.fixture
    def device(self):
        return build_device("L2", trap_capacity=6, num_qubits=8, reorder="IS")

    def test_hop_count_equals_distance(self, device):
        state = make_state(device, {"T0": [0, 1, 2, 3, 4]})
        builder = ProgramBuilder()
        emitted = reorder_to_end(builder, state, device, 1, "T0", "tail")
        assert emitted == 3
        assert all(isinstance(op, IonSwapOp) for op in builder.operations)
        # The physical ion moved; the binding did not change.
        assert state.ion_of_qubit(1) == 1
        assert state.chain("T0").ions == (0, 2, 3, 4, 1)

    def test_hops_toward_head(self, device):
        state = make_state(device, {"T0": [0, 1, 2]})
        builder = ProgramBuilder()
        assert reorder_to_end(builder, state, device, 2, "T0", "head") == 2
        assert state.chain("T0").ions == (2, 0, 1)


class TestRouter:
    @pytest.fixture
    def device(self):
        return build_device("L3", trap_capacity=4, num_qubits=8, buffer_ions=0)

    def test_local_gate_needs_no_plan(self, device):
        state = make_state(device, {"T0": [0, 1]})
        router = Router(state, device)
        assert router.plan_two_qubit_gate(0, 1) is None

    def test_moves_toward_free_space(self, device):
        state = make_state(device, {"T0": [0, 1, 2], "T1": [3]})
        router = Router(state, device)
        plan = router.plan_two_qubit_gate(0, 3)
        assert plan.gate_trap == "T1"
        assert plan.primary.qubit == 0
        assert plan.evictions == ()

    def test_full_destination_forces_other_direction(self, device):
        state = make_state(device, {"T0": [0, 1], "T1": [3, 4, 5, 6]})
        router = Router(state, device)
        plan = router.plan_two_qubit_gate(0, 3)
        assert plan.gate_trap == "T0"
        assert plan.primary.qubit == 3

    def test_affinity_moves_the_loosely_bound_qubit(self, device):
        # Qubit 0 interacts heavily with its trap mates; qubit 3 does not.
        state = make_state(device, {"T0": [0, 1], "T1": [3, 4]})
        weights = {(0, 1): 10, (0, 3): 1}
        router = Router(state, device, interaction_weights=weights)
        plan = router.plan_two_qubit_gate(0, 3)
        assert plan.primary.qubit == 3
        assert plan.gate_trap == "T0"

    def test_eviction_when_both_full(self, device):
        state = make_state(device, {"T0": [0, 1, 2, 3], "T1": [4, 5, 6, 7]})
        router = Router(state, device, next_use=lambda qubit: {5: 10}.get(qubit))
        plan = router.plan_two_qubit_gate(0, 4)
        assert len(plan.evictions) == 1
        eviction = plan.evictions[0]
        # Victim is a T1 resident other than the gate operands, and it goes to
        # the only trap with space (T2).
        assert eviction.qubit in {5, 6, 7}
        assert eviction.destination == "T2"
        # Victims with no future use are preferred over qubit 5 (used later).
        assert eviction.qubit != 5
        assert plan.all_shuttles[-1] == plan.primary

    def test_in_transit_qubit_rejected(self, device):
        state = make_state(device, {"T0": [0, 1], "T1": [2]})
        state.split("T0", 0)
        router = Router(state, device)
        with pytest.raises(ValueError):
            router.plan_two_qubit_gate(0, 2)

    def test_unknown_policy_rejected(self, device):
        state = make_state(device, {"T0": [0]})
        with pytest.raises(ValueError):
            Router(state, device, policy="random")

    def test_fixed_policy_always_moves_first_operand(self, device):
        state = make_state(device, {"T0": [0, 1], "T1": [2, 3]})
        router = Router(state, device, policy="fixed",
                        interaction_weights={(0, 1): 100})
        plan = router.plan_two_qubit_gate(0, 2)
        assert plan.primary.qubit == 0

"""Unit tests for the gate scheduler and the program builder."""

import pytest

from repro.compiler.builder import ProgramBuilder
from repro.compiler.scheduler import GateScheduler
from repro.ir.circuit import Circuit


class TestGateScheduler:
    def test_schedule_covers_every_gate(self, qft8):
        scheduler = GateScheduler(qft8)
        order = scheduler.schedule()
        assert sorted(order) == list(range(len(qft8)))

    def test_schedule_respects_dependencies(self, qft8):
        order = GateScheduler(qft8).schedule()
        position = {gate: i for i, gate in enumerate(order)}
        dag = GateScheduler(qft8).dag
        for gate in range(len(qft8)):
            for predecessor in dag.predecessors(gate):
                assert position[predecessor] < position[gate]

    def test_prefers_local_gates(self):
        circuit = Circuit(4)
        circuit.add("cx", 0, 1)  # remote under our fake locality
        circuit.add("cx", 2, 3)  # local
        scheduler = GateScheduler(circuit, is_local=lambda index: index == 1)
        assert scheduler.next_gate() == 1

    def test_falls_back_to_program_order(self):
        circuit = Circuit(4)
        circuit.add("cx", 0, 1)
        circuit.add("cx", 2, 3)
        scheduler = GateScheduler(circuit, is_local=lambda index: False)
        assert scheduler.next_gate() == 0

    def test_mark_done_unlocks_successors(self):
        circuit = Circuit(2)
        circuit.add("h", 0)
        circuit.add("cx", 0, 1)
        scheduler = GateScheduler(circuit)
        assert scheduler.ready_gates() == [0]
        scheduler.mark_done(scheduler.next_gate())
        assert scheduler.ready_gates() == [1]

    def test_double_mark_done_rejected(self):
        circuit = Circuit(1).add("h", 0)
        scheduler = GateScheduler(circuit)
        index = scheduler.next_gate()
        scheduler.mark_done(index)
        with pytest.raises(ValueError):
            scheduler.mark_done(index)

    def test_next_gate_on_empty_raises(self):
        scheduler = GateScheduler(Circuit(1))
        with pytest.raises(RuntimeError):
            scheduler.next_gate()

    def test_done_and_bool(self):
        circuit = Circuit(1).add("h", 0)
        scheduler = GateScheduler(circuit)
        assert bool(scheduler)
        assert not scheduler.done()
        scheduler.mark_done(scheduler.next_gate())
        assert scheduler.done()
        assert not bool(scheduler)


class TestProgramBuilder:
    def test_op_ids_are_dense(self):
        builder = ProgramBuilder()
        builder.gate(trap="T0", ions=(0,), qubits=(0,), name="h", chain_length=3)
        builder.split(trap="T0", ion=0, chain_size=3, side="tail")
        builder.move(ion=0, segment="S0", length=1, from_node="T0", to_node="T1")
        assert [op.op_id for op in builder.operations] == [0, 1, 2]
        assert builder.next_id == 3

    def test_ion_dependencies_chain(self):
        builder = ProgramBuilder()
        builder.split(trap="T0", ion=5, chain_size=3, side="tail")
        builder.move(ion=5, segment="S0", length=1, from_node="T0", to_node="T1")
        builder.merge(trap="T1", ion=5, side="head")
        assert builder.operations[1].dependencies == (0,)
        assert builder.operations[2].dependencies == (1,)

    def test_trap_dependencies_serialise_trap_ops(self):
        builder = ProgramBuilder()
        builder.gate(trap="T0", ions=(0,), qubits=(0,), name="h", chain_length=2)
        builder.gate(trap="T0", ions=(1,), qubits=(1,), name="h", chain_length=2)
        # Different ions, same trap: second gate depends on the first.
        assert builder.operations[1].dependencies == (0,)

    def test_independent_traps_have_no_dependency(self):
        builder = ProgramBuilder()
        builder.gate(trap="T0", ions=(0,), qubits=(0,), name="h", chain_length=2)
        builder.gate(trap="T1", ions=(1,), qubits=(1,), name="h", chain_length=2)
        assert builder.operations[1].dependencies == ()

    def test_moves_do_not_serialise_across_ions(self):
        builder = ProgramBuilder()
        builder.move(ion=0, segment="S0", length=1, from_node="T0", to_node="T1")
        builder.move(ion=1, segment="S1", length=1, from_node="T2", to_node="T3")
        assert builder.operations[1].dependencies == ()

    def test_two_qubit_gate_merges_dependencies(self):
        builder = ProgramBuilder()
        builder.gate(trap="T0", ions=(0,), qubits=(0,), name="h", chain_length=2)
        builder.gate(trap="T1", ions=(1,), qubits=(1,), name="h", chain_length=2)
        builder.merge(trap="T0", ion=1, side="tail")
        gate = builder.gate(trap="T0", ions=(0, 1), qubits=(0, 1), name="cx",
                            chain_length=2, ion_distance=0)
        assert set(gate.dependencies) == {0, 2}

    def test_swap_gate_and_ion_swap_emission(self):
        builder = ProgramBuilder()
        builder.swap_gate(trap="T0", ions=(0, 1), qubits=(0, 1), chain_length=4,
                          ion_distance=2)
        builder.ion_swap(trap="T0", ions=(1, 2), chain_size=4)
        builder.measure(trap="T0", ion=2, qubit=2)
        builder.cross_junction(ion=3, junction="J0", degree=3)
        kinds = [op.kind.value for op in builder.operations]
        assert kinds == ["swap_gate", "ion_swap", "measure", "junction"]

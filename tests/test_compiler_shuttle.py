"""Unit tests for shuttle emission (split / move / junction / merge sequences)."""

import pytest

from repro.compiler.builder import ProgramBuilder
from repro.compiler.placement_state import PlacementState
from repro.compiler.shuttle import emit_shuttle
from repro.hardware import build_device
from repro.isa.operations import (
    JunctionCrossOp,
    MergeOp,
    MoveOp,
    OpKind,
    SplitOp,
    SwapGateOp,
)


def make_state(device, layout):
    state = PlacementState(device)
    for trap_name, qubits in layout.items():
        for qubit in qubits:
            state.load_ion(qubit, trap_name, qubit)
    return state


class TestLinearShuttles:
    @pytest.fixture
    def device(self):
        return build_device("L3", trap_capacity=5, num_qubits=9, reorder="GS")

    def test_adjacent_shuttle_sequence(self, device):
        state = make_state(device, {"T0": [0, 1, 2], "T1": [3]})
        builder = ProgramBuilder()
        emit_shuttle(builder, state, device, 2, "T1")
        kinds = [op.kind for op in builder.operations]
        # Qubit 2 is already at T0's tail (facing T1): split, move, merge.
        assert kinds == [OpKind.SPLIT, OpKind.MOVE, OpKind.MERGE]
        assert state.trap_of_qubit(2) == "T1"
        state.validate()

    def test_reorder_inserted_when_not_at_port(self, device):
        state = make_state(device, {"T0": [0, 1, 2], "T1": [3]})
        builder = ProgramBuilder()
        emit_shuttle(builder, state, device, 0, "T1")
        kinds = [op.kind for op in builder.operations]
        assert kinds[0] == OpKind.SWAP_GATE
        assert kinds[1:] == [OpKind.SPLIT, OpKind.MOVE, OpKind.MERGE]
        # With GS the state of qubit 0 rides on what used to be ion 2.
        assert state.trap_of_qubit(0) == "T1"
        assert state.ion_of_qubit(0) == 2

    def test_pass_through_intermediate_trap(self, device):
        state = make_state(device, {"T0": [0, 1], "T1": [2, 3], "T2": [4]})
        builder = ProgramBuilder()
        emit_shuttle(builder, state, device, 1, "T2")
        kinds = [op.kind for op in builder.operations]
        # Figure 4: split at T0, move, merge into T1, reorder across T1's
        # chain, split from T1, move, merge at T2.
        assert kinds == [
            OpKind.SPLIT, OpKind.MOVE, OpKind.MERGE, OpKind.SWAP_GATE,
            OpKind.SPLIT, OpKind.MOVE, OpKind.MERGE,
        ]
        assert state.trap_of_qubit(1) == "T2"
        # T1's population is unchanged after the pass-through.
        assert len(state.chain("T1")) == 2
        state.validate()

    def test_split_annotated_with_chain_size_and_side(self, device):
        state = make_state(device, {"T0": [0, 1, 2], "T1": []})
        builder = ProgramBuilder()
        emit_shuttle(builder, state, device, 2, "T1")
        split = [op for op in builder.operations if isinstance(op, SplitOp)][0]
        assert split.chain_size == 3
        assert split.side == "tail"

    def test_merge_side_faces_incoming_segment(self, device):
        state = make_state(device, {"T0": [0], "T1": [1]})
        builder = ProgramBuilder()
        emit_shuttle(builder, state, device, 0, "T1")
        merge = [op for op in builder.operations if isinstance(op, MergeOp)][0]
        # Arriving from the left (T0), the ion joins T1's head.
        assert merge.side == "head"
        assert state.chain("T1").ions == (0, 1)

    def test_noop_when_already_there(self, device):
        state = make_state(device, {"T0": [0, 1]})
        builder = ProgramBuilder()
        emit_shuttle(builder, state, device, 0, "T0")
        assert len(builder) == 0

    def test_full_destination_rejected(self, device):
        state = make_state(device, {"T0": [0], "T1": [1, 2, 3, 4, 5]})
        builder = ProgramBuilder()
        with pytest.raises(ValueError):
            emit_shuttle(builder, state, device, 0, "T1")

    def test_in_transit_qubit_rejected(self, device):
        state = make_state(device, {"T0": [0, 1], "T1": []})
        state.split("T0", 0)
        with pytest.raises(ValueError):
            emit_shuttle(ProgramBuilder(), state, device, 0, "T1")


class TestGridShuttles:
    @pytest.fixture
    def device(self):
        return build_device("G2x2", trap_capacity=5, num_qubits=12, reorder="GS")

    def test_same_column_crosses_one_junction(self, device):
        state = make_state(device, {"T0": [0, 1], "T2": [2]})
        builder = ProgramBuilder()
        emit_shuttle(builder, state, device, 1, "T2")
        kinds = [op.kind for op in builder.operations]
        assert kinds == [OpKind.SPLIT, OpKind.MOVE, OpKind.JUNCTION,
                         OpKind.MOVE, OpKind.MERGE]
        junction = [op for op in builder.operations if isinstance(op, JunctionCrossOp)][0]
        assert junction.junction == "J0"

    def test_cross_column_no_intermediate_traps(self, device):
        state = make_state(device, {"T0": [0, 1], "T3": [2]})
        builder = ProgramBuilder()
        emit_shuttle(builder, state, device, 0, "T3")
        kinds = [op.kind for op in builder.operations]
        assert OpKind.MERGE not in kinds[:-1]  # only the final merge
        assert kinds.count(OpKind.JUNCTION) == 2
        assert kinds.count(OpKind.MOVE) == 3
        state.validate()

    def test_moves_record_segments(self, device):
        state = make_state(device, {"T0": [0], "T1": [1]})
        builder = ProgramBuilder()
        emit_shuttle(builder, state, device, 0, "T1")
        moves = [op for op in builder.operations if isinstance(op, MoveOp)]
        assert all(op.segment.startswith("S") for op in moves)
        assert moves[0].from_node == "T0"


class TestISReordering:
    def test_is_shuttle_uses_ion_swaps(self):
        device = build_device("L2", trap_capacity=5, num_qubits=6, reorder="IS")
        state = make_state(device, {"T0": [0, 1, 2], "T1": []})
        builder = ProgramBuilder()
        emit_shuttle(builder, state, device, 0, "T1")
        kinds = [op.kind for op in builder.operations]
        assert kinds.count(OpKind.ION_SWAP) == 2
        assert OpKind.SWAP_GATE not in kinds
        assert not any(isinstance(op, SwapGateOp) for op in builder.operations)

"""Determinism regression: compiled programs and metrics vs. golden snapshots.

The golden file ``tests/data/golden_determinism.json`` was generated from the
*seed* implementation (the three-pass simulation engine, the sorted()-scan
scheduler and the chain-rescanning router) before the fast-path rewrite.  The
optimized pipeline must reproduce every compiled op sequence and every
simulation metric **bit-identically** -- fingerprints hash exact float bit
patterns, so these tests fail on a single ULP of drift.

The scaled suite (all six Table II applications at 16 qubits, three
topology/reorder configs) runs in every test invocation; the full paper-scale
suite runs when ``REPRO_GOLDEN_SCALE=paper`` is set (it compiles 64-78 qubit
circuits and takes a few seconds).

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/data/regen_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.apps import scaled_suite, table2_suite
from repro.io.fingerprint import (
    circuit_fingerprint,
    program_fingerprint,
    result_metrics_hex,
)
from repro.sim.engine import simulate
from repro.toolflow import ArchitectureConfig
from repro.toolflow.runner import compile_for

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_determinism.json"


def _golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _config_from_key(key: str) -> ArchitectureConfig:
    topology, capacity, reorder = key.split("-")
    return ArchitectureConfig(topology=topology, trap_capacity=int(capacity[3:]),
                              reorder=reorder)


def _check_scale(scale: str, suite) -> None:
    golden = _golden()[scale]
    for key, per_app in golden.items():
        config = _config_from_key(key)
        for name, entry in per_app.items():
            circuit = suite[name]
            assert circuit_fingerprint(circuit) == entry["circuit"], (
                f"{scale}/{key}/{name}: the application generator changed; "
                f"regenerate the golden file if intentional"
            )
            program, device = compile_for(circuit, config)
            assert len(program) == entry["num_ops"], f"{scale}/{key}/{name}: op count"
            assert program_fingerprint(program) == entry["program"], (
                f"{scale}/{key}/{name}: compiled op sequence diverged from seed"
            )
            metrics = result_metrics_hex(simulate(program, device))
            assert metrics == entry["metrics"], (
                f"{scale}/{key}/{name}: simulation metrics diverged from seed"
            )


class TestGoldenDeterminism:
    def test_scaled_suite_bit_identical(self):
        """All six apps x three configs at 16 qubits match the seed exactly."""

        _check_scale("scaled16", scaled_suite(16))

    @pytest.mark.slow
    @pytest.mark.skipif(os.environ.get("REPRO_GOLDEN_SCALE") != "paper",
                        reason="paper-scale golden check (set REPRO_GOLDEN_SCALE=paper)")
    def test_paper_suite_bit_identical(self):
        """The full Table II suite at paper scale matches the seed exactly."""

        _check_scale("paper", table2_suite())

    def test_simulation_is_repeatable(self):
        """Re-simulating the same program yields the same metric bits."""

        suite = scaled_suite(16)
        config = _config_from_key("L4-cap8-GS")
        program, device = compile_for(suite["QFT"], config)
        first = result_metrics_hex(simulate(program, device))
        second = result_metrics_hex(simulate(program, device))
        assert first == second

"""Tests for the shard-lease dispatcher (repro.dse.dispatch).

Covers the lease lifecycle the dispatcher is built on -- claim contention,
heartbeat renewal, expiry-based reclaim of a killed worker's shard -- plus
the worker loop, the dispatch manifest, the ETA estimate, the CLI surface,
and the ISSUE's acceptance scenario: a 3-worker dispatched run of a
48-point space with one worker SIGKILLed mid-run whose merged store exports
byte-identically to a single-process run of the same space.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.dse import (
    DSERunner,
    DesignSpace,
    Dispatcher,
    ExperimentStore,
    LeaseLost,
    ShardLedger,
    estimate_eta_s,
    read_manifest,
    run_worker,
    write_manifest,
)

#: A fast 4-point space evaluated entirely with 8-qubit circuits.
TINY_SPACE = dict(apps=("QFT", "BV"), qubits=(8,), topologies=("L3",),
                  capacities=(6,), gates=("AM1", "FM"), reorders=("GS",))

def _backdate(path: Path, by_s: float = 3600.0) -> None:
    """Rewind a lease file's mtime, simulating a worker that stopped
    heartbeating ``by_s`` seconds ago (e.g. SIGKILLed)."""

    past = time.time() - by_s
    os.utime(path, (past, past))


def _export(store_dir: Path, output: Path) -> bytes:
    assert main(["dse", "export", "--store", str(store_dir),
                 "--output", str(output)]) == 0
    return output.read_bytes()


# --------------------------------------------------------------------------- #
class TestShardLedger:
    def test_claim_contention_single_winner(self, tmp_path):
        ledger = ShardLedger(tmp_path / "leases", 3)
        assert ledger.claim(1, "worker-a") is True
        assert ledger.claim(1, "worker-b") is False
        assert ledger.owner_of(1) == "worker-a"
        assert ledger.state(1).status == "active"

    def test_heartbeat_renewal_defers_expiry(self, tmp_path):
        ledger = ShardLedger(tmp_path / "leases", 1, ttl_s=10.0)
        assert ledger.claim(1, "worker-a")
        _backdate(ledger.lease_path(1), by_s=9.5)  # one tick from expiring
        assert ledger.renew(1, "worker-a") is True
        state = ledger.state(1)
        assert state.status == "active"
        assert state.age_s < 1.0  # the heartbeat reset the clock

    def test_expired_lease_is_reclaimed_by_takeover(self, tmp_path):
        ledger = ShardLedger(tmp_path / "leases", 2, ttl_s=5.0)
        assert ledger.claim(1, "dead-worker")
        _backdate(ledger.lease_path(1))
        assert ledger.state(1).status == "expired"
        assert ledger.claim(1, "survivor") is True
        assert ledger.owner_of(1) == "survivor"
        # The dead worker's heartbeat now fails: it must stop working.
        assert ledger.renew(1, "dead-worker") is False
        assert ledger.renew(1, "survivor") is True

    def test_fresh_lease_cannot_be_taken_over(self, tmp_path):
        ledger = ShardLedger(tmp_path / "leases", 1, ttl_s=3600.0)
        assert ledger.claim(1, "worker-a")
        assert ledger.claim(1, "worker-b") is False
        assert ledger.owner_of(1) == "worker-a"

    def test_release_marks_done_and_blocks_reclaim(self, tmp_path):
        ledger = ShardLedger(tmp_path / "leases", 2, ttl_s=5.0)
        assert ledger.claim(2, "worker-a")
        ledger.release(2, "worker-a", done=True)
        assert ledger.state(2).status == "done"
        assert not ledger.lease_path(2).exists()
        # Done shards are never claimable again, even for another owner.
        assert ledger.claim(2, "worker-b") is False
        assert ledger.done_count() == 1
        assert not ledger.all_done()

    def test_renew_without_lease_fails(self, tmp_path):
        ledger = ShardLedger(tmp_path / "leases", 1)
        assert ledger.renew(1, "worker-a") is False

    def test_read_paths_do_not_create_the_directory(self, tmp_path):
        # `dse status --eta` inspects the ledger of stores it only queries
        # (possibly on a read-only mount): reads must not mkdir.
        lease_dir = tmp_path / "leases"
        ledger = ShardLedger(lease_dir, 2)
        assert ledger.status_counts() == {"open": 2, "active": 0,
                                          "expired": 0, "done": 0}
        assert ledger.owner_of(1) is None
        assert not ledger.all_done()
        assert not lease_dir.exists()
        assert ledger.claim(1, "worker-a")  # first write creates it
        assert lease_dir.exists()

    def test_next_claim_partitions_workers(self, tmp_path):
        ledger = ShardLedger(tmp_path / "leases", 3)
        claimed = [ledger.next_claim(owner) for owner in ("a", "b", "c")]
        indices = sorted(shard.index for shard in claimed)
        assert indices == [1, 2, 3]
        for shard in claimed:
            assert shard.count == 3
        assert ledger.next_claim("d") is None  # everything leased

    def test_states_and_counts(self, tmp_path):
        ledger = ShardLedger(tmp_path / "leases", 4, ttl_s=5.0)
        ledger.claim(1, "a")
        ledger.claim(2, "b")
        _backdate(ledger.lease_path(2))
        ledger.claim(3, "c")
        ledger.release(3, "c", done=True)
        assert ledger.status_counts() == {"open": 1, "active": 1,
                                          "expired": 1, "done": 1}

    def test_index_and_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError, match="at least 1"):
            ShardLedger(tmp_path / "leases", 0)
        with pytest.raises(ValueError, match="positive"):
            ShardLedger(tmp_path / "leases", 1, ttl_s=0.0)
        ledger = ShardLedger(tmp_path / "leases", 2)
        with pytest.raises(ValueError, match="1..2"):
            ledger.claim(3, "worker-a")


# --------------------------------------------------------------------------- #
class TestManifest:
    def test_round_trip(self, tmp_path):
        space = DesignSpace(**TINY_SPACE)
        path = write_manifest(tmp_path / "store", space, shards=4,
                              ttl_s=12.0, jobs=2)
        assert path.name == "dispatch.json"
        manifest = read_manifest(tmp_path / "store")
        assert manifest["shards"] == 4
        assert manifest["ttl_s"] == 12.0
        assert manifest["jobs"] == 2
        assert DesignSpace.from_dict(manifest["space"]) == space

    def test_reprepare_same_space_retunes_ttl(self, tmp_path):
        space = DesignSpace(**TINY_SPACE)
        write_manifest(tmp_path / "store", space, shards=4, ttl_s=12.0)
        write_manifest(tmp_path / "store", space, shards=4, ttl_s=30.0)
        assert read_manifest(tmp_path / "store")["ttl_s"] == 30.0

    def test_conflicting_redefinition_rejected(self, tmp_path):
        write_manifest(tmp_path / "store", DesignSpace(**TINY_SPACE), shards=4)
        with pytest.raises(ValueError, match="different dispatch"):
            write_manifest(tmp_path / "store", DesignSpace(**TINY_SPACE),
                           shards=8)
        other = dict(TINY_SPACE, capacities=(8,))
        with pytest.raises(ValueError, match="different dispatch"):
            write_manifest(tmp_path / "store", DesignSpace(**other), shards=4)

    def test_missing_manifest_is_a_clear_error(self, tmp_path):
        with pytest.raises(ValueError, match="no dispatch manifest"):
            read_manifest(tmp_path / "store")


# --------------------------------------------------------------------------- #
class TestEta:
    def test_nothing_pending_is_zero(self):
        assert estimate_eta_s(0, [1.0], 4) == 0.0

    def test_no_timings_is_unknown_not_zero(self):
        assert estimate_eta_s(10, [], 2) is None

    def test_mean_rate_split_across_workers(self):
        assert estimate_eta_s(4, [2.0, 4.0], 2) == pytest.approx(6.0)
        assert estimate_eta_s(4, [2.0, 4.0], 1) == pytest.approx(12.0)
        # Zero active workers never divides by zero.
        assert estimate_eta_s(4, [3.0], 0) == pytest.approx(12.0)


# --------------------------------------------------------------------------- #
class TestWorkerLoop:
    def test_single_worker_completes_all_shards(self, tmp_path):
        space = DesignSpace(**TINY_SPACE)
        store_dir = tmp_path / "store"
        write_manifest(store_dir, space, shards=3, ttl_s=60.0)
        summary = run_worker(store_dir, owner="solo")
        assert sorted(summary["completed"]) == [1, 2, 3]
        assert summary["lost"] == []
        assert ShardLedger.for_store(store_dir, 3).all_done()
        assert len(ExperimentStore(store_dir)) == space.size

    def test_dead_workers_expired_shard_is_reclaimed_and_finished(self, tmp_path):
        space = DesignSpace(**TINY_SPACE)
        store_dir = tmp_path / "store"
        write_manifest(store_dir, space, shards=3, ttl_s=5.0)
        ledger = ShardLedger.for_store(store_dir, 3, ttl_s=5.0)
        # A worker claimed shard 2, then was SIGKILLed: the lease stops
        # renewing and ages past the TTL.
        assert ledger.claim(2, "dead-worker")
        _backdate(ledger.lease_path(2))
        summary = run_worker(store_dir, owner="survivor")
        assert 2 in summary["completed"]
        assert ledger.all_done()
        assert len(ExperimentStore(store_dir)) == space.size

    def test_reclaimed_shard_replays_partial_results(self, tmp_path):
        space = DesignSpace(**TINY_SPACE)
        store_dir = tmp_path / "store"
        write_manifest(store_dir, space, shards=1, ttl_s=5.0)
        ledger = ShardLedger.for_store(store_dir, 1, ttl_s=5.0)
        # The dead worker evaluated (and flushed) part of its shard before
        # dying; the reclaiming worker must replay those rows, not redo them.
        from repro.dse.runner import Shard
        with ExperimentStore(store_dir, writer="shard-1of1") as store:
            partial = DSERunner(space, store=store, shard=Shard(1, 1))
            partial.evaluate(list(space.points())[:2])
        assert ledger.claim(1, "dead-worker")
        _backdate(ledger.lease_path(1))
        run_worker(store_dir, owner="survivor")
        merged = ExperimentStore(store_dir)
        assert len(merged) == space.size
        # Every fingerprint appears exactly once across the shard files.
        lines = []
        for path in sorted(store_dir.glob("*.jsonl")):
            lines += [json.loads(line)["fingerprint"]
                      for line in path.read_text().splitlines() if line]
        assert len(lines) == len(set(lines)) == space.size

    def test_heartbeat_lease_lost_aborts_mid_evaluation(self, tmp_path):
        space = DesignSpace(**TINY_SPACE)
        beats = []

        def heartbeat():
            beats.append(1)
            raise LeaseLost("reclaimed")

        with ExperimentStore(tmp_path / "store") as store:
            runner = DSERunner(space, store=store, heartbeat=heartbeat)
            with pytest.raises(LeaseLost):
                runner.evaluate_space()
        # The rows persisted before the abort survive for the new owner.
        assert beats == [1]
        assert 0 < len(ExperimentStore(tmp_path / "store")) < space.size


# --------------------------------------------------------------------------- #
class TestDispatcherLocal:
    def test_dispatched_run_matches_serial_export(self, tmp_path):
        space = DesignSpace(**TINY_SPACE)
        with ExperimentStore(tmp_path / "serial") as store:
            DSERunner(space, store=store).evaluate_space()
        serial = _export(tmp_path / "serial", tmp_path / "serial.json")

        dispatcher = Dispatcher(space, tmp_path / "dispatched", workers=2,
                                shards=3, ttl_s=30.0, poll_s=0.1)
        summary = dispatcher.run(timeout_s=120.0)
        assert summary["complete"] is True
        assert summary["points"] == space.size
        dispatched = _export(tmp_path / "dispatched",
                             tmp_path / "dispatched.json")
        assert dispatched == serial

    def test_kill_one_worker_shard_reclaimed_export_identical(self):
        """The acceptance scenario: 48 points, 3 workers, one SIGKILLed.

        The killed worker's leased shard must be reclaimed through lease
        expiry by the survivors, and the merged store must export
        byte-identically to a single-process run of the same space.  The
        scenario lives in ``examples/dse_distributed.py --smoke`` (also the
        CI ``dispatch-smoke`` job); this test drives that single source of
        truth rather than duplicating it.
        """

        import subprocess
        import sys

        repo_root = Path(__file__).resolve().parents[1]
        env = os.environ.copy()
        src = str(repo_root / "src")
        env["PYTHONPATH"] = (src if "PYTHONPATH" not in env
                             else src + os.pathsep + env["PYTHONPATH"])
        result = subprocess.run(
            [sys.executable, str(repo_root / "examples" / "dse_distributed.py"),
             "--smoke"],
            capture_output=True, text=True, env=env, timeout=600.0)
        assert result.returncode == 0, \
            f"smoke failed:\n{result.stdout}\n{result.stderr}"
        assert "SIGKILLed worker" in result.stdout
        assert "byte-identical to the serial run" in result.stdout


# --------------------------------------------------------------------------- #
class TestDispatchCli:
    def test_print_only_writes_manifest_and_commands(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(["dse", "dispatch", "--apps", "QFT,BV", "--qubits", "8",
                     "--topologies", "L3", "--capacities", "6",
                     "--gates", "AM1,FM", "--store", str(store),
                     "--workers", "2", "--shards", "3",
                     "--print-only"]) == 0
        out = capsys.readouterr().out
        assert "4 points -> 3 leased shards" in out
        assert out.count("repro dse worker --store") == 2
        manifest = read_manifest(store)
        assert manifest["shards"] == 3

    def test_worker_cli_joins_prepared_dispatch(self, capsys, tmp_path):
        store = tmp_path / "store"
        write_manifest(store, DesignSpace(**TINY_SPACE), shards=2, ttl_s=60.0)
        assert main(["dse", "worker", "--store", str(store),
                     "--owner", "cli-worker"]) == 0
        out = capsys.readouterr().out
        assert "worker cli-worker" in out
        assert len(ExperimentStore(store)) == 4

    def test_worker_cli_without_manifest_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no dispatch manifest"):
            main(["dse", "worker", "--store", str(tmp_path / "store")])

    def test_status_eta_from_manifest(self, capsys, tmp_path):
        store = tmp_path / "store"
        write_manifest(store, DesignSpace(**TINY_SPACE), shards=2, ttl_s=60.0)
        run_worker(store, owner="solo")
        assert main(["dse", "status", "--store", str(store), "--eta"]) == 0
        out = capsys.readouterr().out
        assert "rows carry wall_s" in out
        assert "ETA: 0 pending points" in out

    def test_status_eta_with_space_and_workers(self, capsys, tmp_path):
        store = tmp_path / "store"
        space = DesignSpace(**TINY_SPACE)
        with ExperimentStore(store) as open_store:
            DSERunner(space, store=open_store).evaluate(
                list(space.points())[:2])
        space_file = tmp_path / "space.json"
        space_file.write_text(json.dumps(space.to_dict()))
        assert main(["dse", "status", "--store", str(store), "--eta",
                     "--space", str(space_file), "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "2/4 points completed, 2 pending" in out
        assert "ETA: 2 pending points / 2 active worker(s)" in out

    def test_status_eta_without_space_or_manifest_fails(self, capsys, tmp_path):
        store = tmp_path / "store"
        space = DesignSpace(**TINY_SPACE)
        with ExperimentStore(store) as open_store:
            DSERunner(space, store=open_store).evaluate(
                list(space.points())[:1])
        assert main(["dse", "status", "--store", str(store), "--eta"]) == 1
        assert "provide --space" in capsys.readouterr().err

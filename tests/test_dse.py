"""Tests for the design-space exploration subsystem.

Covers the contracts the subsystem is built around:

* spaces validate, enumerate deterministically and fingerprint stably;
* the store survives kills (truncated trailing line), dedups, and merges
  shard files by directory union;
* a killed-and-resumed run recomputes nothing and is bit-identical to a
  one-shot run;
* every strategy is deterministic under a fixed seed for any ``jobs`` value.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.dse import (
    CoordinateDescent,
    DSERunner,
    DesignPoint,
    DesignSpace,
    ExhaustiveGrid,
    ExperimentStore,
    RandomSampling,
    Shard,
    StoreCorruptionWarning,
    SuccessiveHalving,
    best_record,
    make_strategy,
    pareto_frontier,
    point_from_spec,
    record_to_row,
    row_to_record,
)
from repro.io.fingerprint import design_point_fingerprint, result_fingerprint
from repro.toolflow import ArchitectureConfig
from repro.toolflow.runner import run_experiment


@pytest.fixture
def mini_space():
    """2 apps x 2 capacities x 2 gates on a small linear device (8 points)."""

    return DesignSpace(apps=("QFT", "BV"), topologies=("L3",),
                       capacities=(6, 8), gates=("AM1", "FM"), reorders=("GS",))


@pytest.fixture
def mini_circuits(qft8, bv8):
    return {"QFT": qft8, "BV": bv8}


def _rows(records):
    return [record.as_row() for record in records]


# --------------------------------------------------------------------------- #
class TestDesignSpace:
    def test_size_and_enumeration_order(self, mini_space):
        assert mini_space.size == 8
        points = list(mini_space.points())
        assert len(points) == 8
        # Default order: capacity-major, app next, gate innermost.
        labels = [(p.config.trap_capacity, p.app, p.config.gate) for p in points]
        assert labels == [(6, "QFT", "AM1"), (6, "QFT", "FM"),
                          (6, "BV", "AM1"), (6, "BV", "FM"),
                          (8, "QFT", "AM1"), (8, "QFT", "FM"),
                          (8, "BV", "AM1"), (8, "BV", "FM")]

    def test_custom_order(self):
        space = DesignSpace(apps=("QFT",), capacities=(6, 8), reorders=("GS", "IS"),
                            order=("topology", "reorder", "capacity", "buffer",
                                   "qubits", "app", "gate"))
        combos = [(p.config.reorder, p.config.trap_capacity) for p in space.points()]
        assert combos == [("GS", 6), ("GS", 8), ("IS", 6), ("IS", 8)]

    def test_validation_rejects_bad_axes(self):
        with pytest.raises(ValueError, match="empty"):
            DesignSpace(apps=())
        with pytest.raises(ValueError, match="duplicate"):
            DesignSpace(apps=("QFT", "QFT"))
        with pytest.raises(ValueError, match="gate"):
            DesignSpace(apps=("QFT",), gates=("XY",))
        with pytest.raises(ValueError, match="reorder"):
            DesignSpace(apps=("QFT",), reorders=("ZZ",))
        with pytest.raises(ValueError, match="at least 2"):
            DesignSpace(apps=("QFT",), capacities=(1,))
        with pytest.raises(ValueError, match="permutation"):
            DesignSpace(apps=("QFT",), order=("app", "gate"))

    def test_spec_round_trip(self, mini_space):
        rebuilt = DesignSpace.from_dict(mini_space.to_dict())
        assert rebuilt == mini_space
        assert [p for p in rebuilt.points()] == [p for p in mini_space.points()]

    def test_from_dict_promotes_scalars(self):
        space = DesignSpace.from_dict({"apps": "QFT", "capacities": 6,
                                       "topologies": "L3"})
        assert space.apps == ("QFT",)
        assert space.capacities == (6,)

    def test_from_dict_rejects_future_schema(self):
        with pytest.raises(ValueError, match="newer"):
            DesignSpace.from_dict({"apps": ["QFT"], "schema_version": 999})

    def test_from_dict_rejects_unknown_keys(self):
        # A typo must fail loudly, not silently sweep paper-scale defaults.
        with pytest.raises(ValueError, match="unknown keys.*capacity"):
            DesignSpace.from_dict({"apps": ["QFT"], "capacity": [6, 8]})

    def test_point_spec_round_trip(self, mini_space):
        point = next(mini_space.points())
        rebuilt = point_from_spec(json.loads(json.dumps(point.spec())))
        assert rebuilt == point
        assert rebuilt.config.model == point.config.model


class TestFingerprints:
    def test_stable_and_knob_sensitive(self, qft8):
        config = ArchitectureConfig(topology="L3", trap_capacity=6)
        base = design_point_fingerprint(qft8, config)
        assert base == design_point_fingerprint(qft8, config)
        for changed in (config.with_updates(trap_capacity=8),
                        config.with_updates(gate="AM1"),
                        config.with_updates(reorder="IS"),
                        config.with_updates(topology="G2x2"),
                        config.with_updates(buffer_ions=1)):
            assert design_point_fingerprint(qft8, changed) != base

    def test_model_params_are_keyed(self, qft8):
        config = ArchitectureConfig(topology="L3", trap_capacity=6)
        hot = replace(config.model.heating, k1=1.0)
        changed = config.with_updates(model=replace(config.model, heating=hot))
        assert design_point_fingerprint(qft8, changed) != \
            design_point_fingerprint(qft8, config)

    def test_circuit_structure_is_keyed(self, qft8, bv8):
        config = ArchitectureConfig(topology="L3", trap_capacity=6)
        assert design_point_fingerprint(qft8, config) != \
            design_point_fingerprint(bv8, config)


# --------------------------------------------------------------------------- #
class TestExperimentStore:
    def _row(self, fingerprint, app="qft8"):
        return {"schema_version": 1, "fingerprint": fingerprint,
                "point": {"app": "QFT", "qubits": None,
                          "config": {"topology": "L3", "trap_capacity": 6,
                                     "gate": "FM", "reorder": "GS",
                                     "buffer_ions": 2}},
                "application": app, "program_ops": 3, "shuttles": 1,
                "metrics": {"duration_us": 10.0, "duration_s": 1e-5,
                            "fidelity": 0.5, "log_fidelity": -0.69,
                            "computation_s": 1e-5, "communication_s": 0.0,
                            "max_motional_energy": 0.0,
                            "mean_background_error": 0.0,
                            "mean_motional_error": 0.0,
                            "num_shuttles": 1.0, "num_ms_gates": 2.0}}

    def test_in_memory_dedup(self):
        store = ExperimentStore()
        assert store.add(self._row("aa")) is True
        assert store.add(self._row("aa")) is False
        assert len(store) == 1
        assert "aa" in store

    def test_persist_and_reload(self, tmp_path):
        with ExperimentStore(tmp_path / "store") as store:
            store.add(self._row("aa"))
            store.add(self._row("bb"))
        reloaded = ExperimentStore(tmp_path / "store")
        assert len(reloaded) == 2
        assert reloaded.get("aa")["application"] == "qft8"

    def test_torn_line_mid_file_is_skipped_with_warning(self, tmp_path):
        # A partially copied shard file can tear a line *anywhere*, not just
        # at the tail; rows after the tear must still load.
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        lines = [json.dumps(self._row("aa")),
                 '{"schema_version": 1, "fingerprint": "bb", "poi',  # torn
                 json.dumps(self._row("cc"))]
        (store_dir / "shard-1of2.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.warns(StoreCorruptionWarning, match="torn or corrupt"):
            store = ExperimentStore(store_dir)
        assert sorted(store.fingerprints()) == ["aa", "cc"]
        assert store.skipped_lines == 1

    def test_valid_json_but_incomplete_row_is_skipped(self, tmp_path):
        # A tear can also produce parseable JSON that is not a usable row
        # (not an object, or an object missing replay-critical keys); the
        # loader must skip-and-warn, not blow up later in row_to_record.
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        lines = ["[1, 2, 3]",
                 '{"schema_version": 1, "fingerprint": "bb"}',
                 json.dumps(self._row("aa"))]
        (store_dir / "results.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.warns(StoreCorruptionWarning):
            store = ExperimentStore(store_dir)
        assert store.fingerprints() == ["aa"]
        assert store.skipped_lines == 2
        assert [record.application for record in store.records()] == ["qft8"]

    def test_malformed_schema_version_is_skipped_not_fatal(self, tmp_path):
        # A corrupt line can garble the version field into parseable-but-
        # nonsense JSON; that is line corruption (skip + warn), not a reason
        # to abort the directory.  Genuinely newer versions stay fatal (see
        # test_newer_schema_rejected).
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        bad = dict(self._row("bb"), schema_version="two")
        lines = [json.dumps(bad), json.dumps(self._row("aa"))]
        (store_dir / "results.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.warns(StoreCorruptionWarning, match="malformed"):
            store = ExperimentStore(store_dir)
        assert store.fingerprints() == ["aa"]
        assert store.skipped_lines == 1

    def test_binary_garbage_in_file_does_not_abort_load(self, tmp_path):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        with open(store_dir / "results.jsonl", "wb") as handle:
            handle.write(json.dumps(self._row("aa")).encode() + b"\n")
            handle.write(b"\xff\xfe garbage \x00\n")
            handle.write(json.dumps(self._row("bb")).encode() + b"\n")
        with pytest.warns(StoreCorruptionWarning):
            store = ExperimentStore(store_dir)
        assert sorted(store.fingerprints()) == ["aa", "bb"]

    def test_unterminated_complete_trailing_row_survives_append(self, tmp_path):
        # A kill can land between writing a full row and its newline.  The
        # loader accepts the row, so the writer-open healing must terminate
        # it -- not truncate it away, which would lose the point forever
        # (dedup stops the replayed row from ever being rewritten).
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "results.jsonl").write_text(
            json.dumps(self._row("aa")) + "\n" + json.dumps(self._row("bb")))
        store = ExperimentStore(store_dir)
        assert sorted(store.fingerprints()) == ["aa", "bb"]
        store.add(self._row("cc"))
        store.close()
        reloaded = ExperimentStore(store_dir)
        assert sorted(reloaded.fingerprints()) == ["aa", "bb", "cc"]
        assert reloaded.skipped_lines == 0

    def test_torn_fragment_is_dropped_on_append(self, tmp_path):
        # A genuine fragment (unparseable tail) holds no recoverable row;
        # the writer-open healing removes it so later loads stay clean.
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "results.jsonl").write_text(
            json.dumps(self._row("aa")) + "\n" + '{"fingerprint": "bb", "tor')
        store = ExperimentStore(store_dir)
        assert store.fingerprints() == ["aa"]
        store.add(self._row("cc"))
        store.close()
        reloaded = ExperimentStore(store_dir)
        assert sorted(reloaded.fingerprints()) == ["aa", "cc"]
        assert reloaded.skipped_lines == 0  # the scar is gone, not skipped

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        with ExperimentStore(tmp_path / "store") as store:
            store.add(self._row("aa"))
            store.add(self._row("bb"))
        path = store.writer_path
        # Simulate a kill mid-append: a half-written JSON line at the tail.
        with open(path, "a") as handle:
            handle.write('{"schema_version": 1, "fingerprint": "cc", "trunc')
        recovered = ExperimentStore(tmp_path / "store")
        assert len(recovered) == 2
        assert recovered.skipped_lines == 1
        assert "cc" not in recovered

    def test_directory_union_merges_shards(self, tmp_path):
        with ExperimentStore(tmp_path / "store", writer="shard-1of2") as one:
            one.add(self._row("aa"))
        with ExperimentStore(tmp_path / "store", writer="shard-2of2") as two:
            two.add(self._row("bb"))
        merged = ExperimentStore(tmp_path / "store")
        assert sorted(merged.fingerprints()) == ["aa", "bb"]
        assert merged.source_counts() == {"shard-1of2.jsonl": 1,
                                          "shard-2of2.jsonl": 1}

    def test_merge_from_other_store(self, tmp_path):
        source = ExperimentStore()
        source.add(self._row("aa"))
        source.add(self._row("bb"))
        with ExperimentStore(tmp_path / "store") as target:
            target.add(self._row("aa"))
            assert target.merge_from(source) == 1
        assert len(ExperimentStore(tmp_path / "store")) == 2

    def test_newer_schema_rejected(self, tmp_path):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        row = self._row("aa")
        row["schema_version"] = 999
        (store_dir / "results.jsonl").write_text(json.dumps(row) + "\n")
        with pytest.raises(ValueError, match="newer"):
            ExperimentStore(store_dir)

    def test_mixed_version_store_round_trip(self, tmp_path):
        # Schema v1 rows (PR 2 stores) carry no wall_s; they must load,
        # replay and report next to v2 rows, and their missing timing must
        # stay *absent* (unknown), never default to zero.
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        old_row = self._row("aa")  # schema_version 1, no wall_s
        assert old_row["schema_version"] == 1
        (store_dir / "pr2-era.jsonl").write_text(json.dumps(old_row) + "\n")
        new_row = dict(self._row("bb"), schema_version=2, wall_s=0.25,
                       application="bv8")
        with ExperimentStore(store_dir) as store:
            store.add(new_row)
        reloaded = ExperimentStore(store_dir)
        assert len(reloaded) == 2
        assert reloaded.skipped_lines == 0
        # ETA math sees exactly the one recorded timing.
        assert reloaded.wall_timings() == [0.25]
        by_fp = {fp: row_to_record(reloaded.get(fp)) for fp in ("aa", "bb")}
        assert by_fp["aa"].wall_s is None
        assert by_fp["bb"].wall_s == 0.25
        # Replaying a v1 record into another store must not invent a timing.
        replay_row = record_to_row("aa", by_fp["aa"].point, by_fp["aa"])
        assert "wall_s" not in replay_row
        replay_new = record_to_row("bb", by_fp["bb"].point, by_fp["bb"])
        assert replay_new["wall_s"] == 0.25
        # ... and the canonical export treats both generations alike: no
        # timings, no per-row schema stamps (a resumed PR2-era store must
        # export byte-identically to a fresh run of the same space).
        for row in reloaded.export_rows():
            assert "wall_s" not in row
            assert "schema_version" not in row

    def test_mixed_version_store_status_cli(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "pr2-era.jsonl").write_text(
            json.dumps(self._row("aa")) + "\n")
        with ExperimentStore(store_dir) as store:
            store.add(dict(self._row("bb"), schema_version=2, wall_s=0.5))
        assert main(["dse", "status", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "2 evaluated points" in out
        assert "Timings: 1/2 rows carry wall_s" in out


# --------------------------------------------------------------------------- #
class TestDSERunner:
    def test_records_match_direct_runs(self, mini_space, mini_circuits):
        runner = DSERunner(mini_space, circuits=mini_circuits)
        records = runner.evaluate_space()
        for point, record in zip(mini_space.points(), records):
            direct = run_experiment(mini_circuits[point.app], point.config)
            assert record.application == direct.application
            assert record.config == direct.config
            assert result_fingerprint(record.result) == \
                result_fingerprint(direct.result)

    def test_gate_fanout_shares_compilations(self, mini_space, mini_circuits):
        runner = DSERunner(mini_space, circuits=mini_circuits)
        runner.evaluate_space()
        # 8 points but only 4 (app x capacity) compilations: the two gate
        # variants of each pair fold into one task, which the batch engine
        # evaluates in a single pass per compilation.
        stats = runner.cache.stats()
        assert (stats["hits"], stats["misses"], stats["entries"]) == (0, 4, 4)
        assert stats["batch_plans"] == 4
        assert stats["batch_variants"] == 8

    def test_jobs_do_not_change_results(self, mini_space, mini_circuits):
        serial = DSERunner(mini_space, circuits=mini_circuits).evaluate_space()
        parallel = DSERunner(mini_space, circuits=mini_circuits,
                             jobs=2).evaluate_space()
        assert _rows(serial) == _rows(parallel)

    def test_duplicate_points_alias_in_batch(self, mini_space, mini_circuits):
        point = next(mini_space.points())
        runner = DSERunner(mini_space, circuits=mini_circuits)
        records = runner.evaluate([point, point])
        assert runner.stats["evaluated"] == 1
        assert records[0] is records[1]

    def test_qubit_override_requires_builder(self, mini_space, mini_circuits):
        runner = DSERunner(mini_space, circuits=mini_circuits)
        point = next(mini_space.points()).with_qubits(10)
        with pytest.raises(ValueError, match="default application builder"):
            runner.evaluate([point])

    def test_default_builder_builds_named_apps(self):
        space = DesignSpace(apps=("BV",), qubits=(10,), topologies=("L3",),
                            capacities=(6,))
        records = DSERunner(space).evaluate_space()
        assert records[0].application == "bv10"

    def test_rows_record_wall_timings(self, mini_space, mini_circuits,
                                      tmp_path):
        with ExperimentStore(tmp_path / "store") as store:
            records = DSERunner(mini_space, store=store,
                                circuits=mini_circuits).evaluate_space()
        # Every fresh evaluation times itself ...
        assert all(record.wall_s > 0 for record in records)
        reloaded = ExperimentStore(tmp_path / "store")
        assert len(reloaded.wall_timings()) == mini_space.size
        # ... the timing replays with the row ...
        assert all(record.wall_s > 0 for record in reloaded.records())
        # ... but never reaches report rows or canonical exports (it
        # describes the run, not the design point).
        assert all("wall_s" not in record.as_row() for record in records)
        assert all("wall_s" not in row for row in reloaded.export_rows())


class TestResumeAndShard:
    """The ISSUE's acceptance semantics: kill/resume and shard splits."""

    def test_killed_run_resumes_without_recompute_bit_identical(
            self, mini_space, mini_circuits, tmp_path):
        points = list(mini_space.points())

        # One-shot reference run.
        with ExperimentStore(tmp_path / "oneshot") as reference_store:
            reference = DSERunner(mini_space, store=reference_store,
                                  circuits=mini_circuits).evaluate_space()

        # Partial run "killed" after 3 points, plus a torn trailing write.
        with ExperimentStore(tmp_path / "resumed") as partial_store:
            DSERunner(mini_space, store=partial_store,
                      circuits=mini_circuits).evaluate(points[:3])
        with open(partial_store.writer_path, "a") as handle:
            handle.write('{"schema_version": 1, "fingerprint": "torn...')

        # Resume: only the 5 missing points execute.
        resumed_store = ExperimentStore(tmp_path / "resumed")
        assert len(resumed_store) == 3
        runner = DSERunner(mini_space, store=resumed_store,
                           circuits=mini_circuits)
        resumed = runner.evaluate_space()
        assert runner.stats == {"evaluated": 5, "reused": 3, "skipped": 0}

        # Bit-identical to the one-shot run: same record rows in order, and
        # byte-identical canonical store content (export_rows strips the
        # per-run wall_s timings, which legitimately differ between runs).
        assert _rows(resumed) == _rows(reference)

        def canonical(store):
            return json.dumps(store.export_rows(), sort_keys=True)

        assert canonical(ExperimentStore(tmp_path / "resumed")) == \
            canonical(ExperimentStore(tmp_path / "oneshot"))

    def test_second_run_recomputes_nothing(self, mini_space, mini_circuits,
                                           tmp_path):
        with ExperimentStore(tmp_path / "store") as store:
            DSERunner(mini_space, store=store,
                      circuits=mini_circuits).evaluate_space()
        rerun = DSERunner(mini_space, store=ExperimentStore(tmp_path / "store"),
                          circuits=mini_circuits)
        rerun.evaluate_space()
        assert rerun.stats["evaluated"] == 0
        assert rerun.cache.stats()["misses"] == 0

    def test_shards_partition_points(self, mini_space, mini_circuits):
        full = DSERunner(mini_space, circuits=mini_circuits).evaluate_space()
        shard_records = []
        for index in (1, 2, 3):
            runner = DSERunner(mini_space, circuits=mini_circuits,
                               shard=Shard(index, 3))
            shard_records.append(runner.evaluate_space())
        for position, merged in enumerate(zip(*shard_records)):
            owners = [record for record in merged if record is not None]
            assert len(owners) == 1  # every point belongs to exactly one shard
            assert owners[0].as_row() == full[position].as_row()

    def test_sharded_stores_union_to_full_run(self, mini_space, mini_circuits,
                                              tmp_path):
        for index in (1, 2):
            with ExperimentStore(tmp_path / "store") as store:
                DSERunner(mini_space, store=store, circuits=mini_circuits,
                          shard=Shard(index, 2)).evaluate_space()
        merged = ExperimentStore(tmp_path / "store")
        assert len(merged) == mini_space.size
        assert len(merged.source_counts()) == 2
        # A reader of the merged directory replays everything, computes nothing.
        replay = DSERunner(mini_space, store=merged, circuits=mini_circuits)
        replay.evaluate_space()
        assert replay.stats == {"evaluated": 0, "reused": 8, "skipped": 0}

    def test_shard_parse_and_validation(self):
        shard = Shard.parse("2/4")
        assert (shard.index, shard.count) == (2, 4)
        with pytest.raises(ValueError):
            Shard.parse("0/4")
        with pytest.raises(ValueError):
            Shard.parse("5/4")
        with pytest.raises(ValueError):
            Shard.parse("nope")

    def test_shard_parse_range_errors_not_masked(self):
        # A well-formed i/N with an out-of-range index must surface the
        # real bound violation, not the generic format message.
        with pytest.raises(ValueError, match=r"shard index must be in 1\.\.4"):
            Shard.parse("0/4")
        with pytest.raises(ValueError, match=r"shard index must be in 1\.\.4"):
            Shard.parse("5/4")
        with pytest.raises(ValueError, match="at least 1"):
            Shard.parse("1/0")
        # Format errors keep the generic message, chained to the parse error.
        with pytest.raises(ValueError, match="form i/N") as excinfo:
            Shard.parse("nope")
        assert isinstance(excinfo.value.__cause__, ValueError)
        with pytest.raises(ValueError, match="form i/N"):
            Shard.parse("1/2/3")

    def test_adaptive_strategy_refuses_shard(self, mini_space, mini_circuits):
        runner = DSERunner(mini_space, circuits=mini_circuits, shard=Shard(1, 2))
        with pytest.raises(ValueError, match="cannot be sharded"):
            runner.run(CoordinateDescent())


# --------------------------------------------------------------------------- #
class TestStrategies:
    def test_grid_covers_space(self, mini_space, mini_circuits):
        result = DSERunner(mini_space, circuits=mini_circuits).run(ExhaustiveGrid())
        assert len(result.evaluated) == mini_space.size
        assert result.best is best_record(result.evaluated)

    @pytest.mark.parametrize("strategy_factory", [
        lambda: RandomSampling(4, seed=7),
        lambda: CoordinateDescent(seed=7),
    ])
    def test_seeded_strategies_deterministic_for_any_jobs(
            self, mini_space, mini_circuits, strategy_factory):
        outcomes = []
        for jobs in (1, 2):
            runner = DSERunner(mini_space, circuits=mini_circuits, jobs=jobs)
            result = runner.run(strategy_factory())
            outcomes.append((_rows(result.evaluated), result.best.as_row()))
        assert outcomes[0] == outcomes[1]

    def test_random_sampling_seed_changes_sample(self, mini_space, mini_circuits):
        def sample(seed):
            runner = DSERunner(mini_space, circuits=mini_circuits)
            result = runner.run(RandomSampling(3, seed=seed))
            return [(row["application"], row["capacity"], row["gate"])
                    for row in _rows(result.evaluated)]

        assert sample(0) == sample(0)
        assert any(sample(0) != sample(seed) for seed in (1, 2, 3))

    def test_greedy_reuses_store_across_runs(self, mini_space, mini_circuits):
        runner = DSERunner(mini_space, circuits=mini_circuits)
        first = runner.run(CoordinateDescent(seed=1))
        rerun = DSERunner(mini_space, store=runner.store, circuits=mini_circuits)
        second = rerun.run(CoordinateDescent(seed=1))
        assert rerun.stats["evaluated"] == 0
        assert _rows(first.evaluated) == _rows(second.evaluated)
        assert first.best.as_row() == second.best.as_row()

    def test_successive_halving_narrows_to_full_scale(self):
        space = DesignSpace(apps=("QFT", "BV"), qubits=(16,), topologies=("L3",),
                            capacities=(6, 8), gates=("FM",), reorders=("GS",))
        runner = DSERunner(space)
        result = runner.run(SuccessiveHalving(proxy_qubits=8))
        assert result.best is not None
        # The winner is evaluated at the true size, not the proxy size.
        assert result.best.as_row()["application"].endswith("16")
        kept = [entry["candidates"] for entry in result.trace]
        assert kept == sorted(kept, reverse=True)

    def test_halving_is_deterministic(self):
        space = DesignSpace(apps=("BV",), qubits=(16,), topologies=("L3",),
                            capacities=(6, 8), gates=("AM1", "FM"),
                            reorders=("GS",))
        results = [DSERunner(space, jobs=jobs).run(
            SuccessiveHalving(seed=5, proxy_qubits=8)) for jobs in (1, 2)]
        assert _rows(results[0].evaluated) == _rows(results[1].evaluated)
        assert results[0].best.as_row() == results[1].best.as_row()

    def test_make_strategy(self):
        assert make_strategy("grid").name == "grid"
        assert make_strategy("random", samples=3).name == "random"
        assert make_strategy("greedy", seed=2).name == "greedy"
        assert make_strategy("halving").name == "halving"
        with pytest.raises(ValueError, match="--samples"):
            make_strategy("random")
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("magic")


# --------------------------------------------------------------------------- #
class _StubRecord:
    def __init__(self, app, duration_s, fidelity):
        self.application = app
        self.duration_seconds = duration_s
        self.fidelity = fidelity

    def as_row(self):
        return {"application": self.application,
                "duration_s": self.duration_seconds, "fidelity": self.fidelity}


class TestPareto:
    def test_frontier_drops_dominated(self):
        records = [
            _StubRecord("a", 1.0, 0.9),   # frontier (fast + reliable)
            _StubRecord("a", 2.0, 0.8),   # dominated by the first
            _StubRecord("a", 0.5, 0.5),   # frontier (fastest)
            _StubRecord("a", 3.0, 0.95),  # frontier (most reliable)
            _StubRecord("a", 3.5, 0.95),  # dominated (same fidelity, slower)
        ]
        frontier = pareto_frontier(records)
        assert [(r.duration_seconds, r.fidelity) for r in frontier] == \
            [(0.5, 0.5), (1.0, 0.9), (3.0, 0.95)]

    def test_frontier_tie_on_runtime_keeps_most_reliable(self):
        records = [_StubRecord("a", 1.0, 0.7), _StubRecord("a", 1.0, 0.9)]
        assert pareto_frontier(records) == [records[1]]

    def test_best_record_tie_breaks_to_first(self):
        records = [_StubRecord("a", 1.0, 0.9), _StubRecord("b", 2.0, 0.9)]
        assert best_record(records, "fidelity") is records[0]
        assert best_record(records, "runtime") is records[0]

    def test_real_records_frontier(self, mini_space, mini_circuits):
        records = DSERunner(mini_space, circuits=mini_circuits).evaluate_space()
        frontier = pareto_frontier(records)
        assert frontier
        durations = [record.duration_seconds for record in frontier]
        fidelities = [record.fidelity for record in frontier]
        assert durations == sorted(durations)
        assert fidelities == sorted(fidelities)

"""Unit tests for traps, segments, junctions and ions."""

import pytest

from repro.hardware.ion import Ion
from repro.hardware.junction import Junction
from repro.hardware.segment import Segment
from repro.hardware.trap import Trap


class TestIon:
    def test_defaults(self):
        ion = Ion(3)
        assert ion.ion_id == 3
        assert ion.program_qubit is None
        assert ion.species == "Yb171"

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Ion(-1)

    def test_hashable(self):
        assert hash(Ion(1)) == hash(Ion(1))

    def test_str_mentions_holder(self):
        assert "q5" in str(Ion(0, program_qubit=5))
        assert "spare" in str(Ion(0))


class TestTrap:
    def test_default_name(self):
        assert Trap(3, 10).name == "T3"

    def test_custom_name(self):
        assert Trap(0, 10, name="left").name == "left"

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Trap(0, 1)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Trap(-1, 10)

    def test_usable_capacity(self):
        trap = Trap(0, 20)
        assert trap.usable_capacity(2) == 18
        assert trap.usable_capacity(0) == 20

    def test_usable_capacity_floor_at_zero(self):
        assert Trap(0, 3).usable_capacity(10) == 0

    def test_usable_capacity_rejects_negative_buffer(self):
        with pytest.raises(ValueError):
            Trap(0, 10).usable_capacity(-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Trap(0, 10).capacity = 5


class TestSegment:
    def test_name(self):
        assert Segment(4, "T0", "T1").name == "S4"

    def test_other_end(self):
        segment = Segment(0, "T0", "J1")
        assert segment.other_end("T0") == "J1"
        assert segment.other_end("J1") == "T0"

    def test_other_end_unknown_node(self):
        with pytest.raises(ValueError):
            Segment(0, "T0", "T1").other_end("T9")

    def test_connects(self):
        segment = Segment(0, "T0", "T1")
        assert segment.connects("T1", "T0")
        assert not segment.connects("T0", "T2")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Segment(0, "T0", "T0")

    def test_length_validation(self):
        with pytest.raises(ValueError):
            Segment(0, "T0", "T1", length=0)


class TestJunction:
    def test_default_name(self):
        assert Junction(2, 3).name == "J2"

    def test_kind_by_degree(self):
        assert Junction(0, 3).kind == "Y"
        assert Junction(0, 4).kind == "X"
        assert Junction(0, 5).kind == "X"

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            Junction(0, 1)

    def test_position_stored(self):
        assert Junction(0, 3, position=(1.0, 0.5)).position == (1.0, 0.5)

"""Unit tests for the device topology graph and path planning."""

import pytest

from repro.hardware.builders import grid_topology, linear_topology, ring_topology
from repro.hardware.junction import Junction
from repro.hardware.topology import PathStep, Topology
from repro.hardware.trap import Trap


class TestConstruction:
    def test_add_and_lookup(self):
        topo = Topology("t")
        topo.add_trap(Trap(0, 10))
        topo.add_trap(Trap(1, 10))
        topo.connect("T0", "T1")
        assert topo.num_traps == 2
        assert topo.trap("T0").capacity == 10
        assert topo.trap_by_id(1).name == "T1"

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_trap(Trap(0, 10))
        with pytest.raises(ValueError):
            topo.add_trap(Trap(0, 10))

    def test_connect_unknown_node(self):
        topo = Topology()
        topo.add_trap(Trap(0, 10))
        with pytest.raises(ValueError):
            topo.connect("T0", "T9")

    def test_duplicate_segment_rejected(self):
        topo = Topology()
        topo.add_trap(Trap(0, 10))
        topo.add_trap(Trap(1, 10))
        topo.connect("T0", "T1")
        with pytest.raises(ValueError):
            topo.connect("T0", "T1")

    def test_validate_requires_traps(self):
        with pytest.raises(ValueError):
            Topology().validate()

    def test_validate_requires_connected(self):
        topo = Topology()
        topo.add_trap(Trap(0, 10))
        topo.add_trap(Trap(1, 10))
        with pytest.raises(ValueError):
            topo.validate()

    def test_validate_checks_junction_degree(self):
        topo = Topology()
        topo.add_trap(Trap(0, 10))
        topo.add_junction(Junction(0, 3))
        topo.connect("T0", "J0")
        with pytest.raises(ValueError):
            topo.validate()

    def test_unknown_lookups_raise(self):
        topo = linear_topology(2, 10)
        with pytest.raises(KeyError):
            topo.trap("T9")
        with pytest.raises(KeyError):
            topo.junction("J0")
        with pytest.raises(KeyError):
            topo.trap_by_id(99)
        with pytest.raises(KeyError):
            topo.segment_between("T0", "T9")


class TestLinearPaths:
    @pytest.fixture
    def l4(self):
        return linear_topology(4, 10)

    def test_adjacent_path(self, l4):
        path = l4.shortest_path("T0", "T1")
        assert path.num_segments == 1
        assert path.num_junctions == 0
        assert path.num_intermediate_traps == 0

    def test_distant_path_passes_through_traps(self, l4):
        path = l4.shortest_path("T0", "T3")
        assert path.num_segments == 3
        assert [trap.name for trap in path.intermediate_traps] == ["T1", "T2"]

    def test_same_trap_path_is_empty(self, l4):
        assert len(l4.shortest_path("T1", "T1")) == 0

    def test_path_must_connect_traps(self, l4):
        with pytest.raises(KeyError):
            l4.shortest_path("T0", "J0")

    def test_trap_distance(self, l4):
        assert l4.trap_distance("T0", "T3") == 3

    def test_distance_matrix_symmetric(self, l4):
        matrix = l4.distance_matrix()
        assert matrix[("T0", "T2")] == matrix[("T2", "T0")] == 2
        assert matrix[("T1", "T1")] == 0

    def test_port_sides(self, l4):
        assert l4.port_side("T1", "T0") == "head"
        assert l4.port_side("T1", "T2") == "tail"

    def test_port_side_requires_adjacency(self, l4):
        with pytest.raises(KeyError):
            l4.port_side("T0", "T3")


class TestGridPaths:
    @pytest.fixture
    def g2x3(self):
        return grid_topology(2, 3, 10)

    def test_structure(self, g2x3):
        assert g2x3.num_traps == 6
        assert len(g2x3.junctions) == 3
        # 6 trap-junction segments + 2 junction-junction segments.
        assert len(g2x3.segments) == 8

    def test_junction_kinds(self, g2x3):
        kinds = {j.name: j.kind for j in g2x3.junctions}
        assert kinds["J0"] == "Y"
        assert kinds["J1"] == "X"
        assert kinds["J2"] == "Y"

    def test_same_column_path_uses_one_junction(self, g2x3):
        path = g2x3.shortest_path("T0", "T3")  # column 0, rows 0 and 1
        assert path.num_junctions == 1
        assert path.num_intermediate_traps == 0

    def test_cross_column_path(self, g2x3):
        path = g2x3.shortest_path("T0", "T5")  # corner to corner
        assert path.num_intermediate_traps == 0
        assert path.num_junctions == 3
        assert path.num_segments == 4

    def test_no_pass_through_traps_anywhere(self, g2x3):
        for a in g2x3.traps:
            for b in g2x3.traps:
                if a.name != b.name:
                    assert g2x3.shortest_path(a.name, b.name).num_intermediate_traps == 0

    def test_all_shortest_paths(self, g2x3):
        paths = g2x3.all_shortest_paths("T0", "T3")
        assert len(paths) >= 1
        assert all(p.num_segments == 2 for p in paths)


class TestOtherTopologies:
    def test_ring(self):
        ring = ring_topology(6, 10)
        assert ring.num_traps == 6
        assert ring.trap_distance("T0", "T5") == 1  # wrap-around
        assert ring.trap_distance("T0", "T3") == 3

    def test_single_trap_linear(self):
        topo = linear_topology(1, 10)
        assert topo.num_traps == 1

    def test_total_capacity(self):
        assert linear_topology(6, 20).total_capacity() == 120

    def test_path_step_validation(self):
        with pytest.raises(ValueError):
            PathStep("tunnel", None)

"""Integration tests: the paper's qualitative claims on scaled-down instances.

These tests run the complete toolflow (generator -> compiler -> simulator) on
reduced application instances and check that the qualitative conclusions of
Sections IX and X hold: they are the regression net for "the figures still
have the right shape".  Absolute values are calibration-dependent and are NOT
asserted here; EXPERIMENTS.md records those for the full-scale runs.
"""

import pytest

from repro.apps import scaled_suite
from repro.isa.operations import OpKind
from repro.toolflow import ArchitectureConfig, run_experiment, run_gate_variants


@pytest.fixture(scope="module")
def suite():
    return scaled_suite(16)


@pytest.fixture(scope="module")
def base_config():
    return ArchitectureConfig(topology="L4", trap_capacity=8, gate="FM", reorder="GS")


@pytest.fixture(scope="module")
def records(suite, base_config):
    """One record per application on the reference configuration."""

    return {name: run_experiment(circuit, base_config)
            for name, circuit in suite.items()}


class TestSectionIXTrapSizing:
    def test_communication_light_apps_have_high_fidelity(self, records):
        """BV and Adder stay reliable even on small traps (Figure 6c)."""

        assert records["BV"].fidelity > 0.9
        assert records["Adder"].fidelity > 0.5

    def test_communication_heavy_apps_lose_fidelity(self, records):
        """QFT (all-to-all) loses far more fidelity than BV (Figure 6c vs 6e).

        At this reduced scale both survive, so the claim is checked on the
        error rate rather than on absolute fidelity.
        """

        qft_error = records["QFT"].result.error_rate
        bv_error = records["BV"].result.error_rate
        assert records["QFT"].fidelity < records["BV"].fidelity
        assert qft_error > 5 * bv_error

    def test_small_traps_hurt_communication_heavy_apps(self, suite):
        """Very small traps force more shuttling and lower fidelity (Fig. 6)."""

        tiny = ArchitectureConfig(topology="L4", trap_capacity=6, gate="FM")
        medium = ArchitectureConfig(topology="L4", trap_capacity=12, gate="FM")
        qft_tiny = run_experiment(suite["QFT"], tiny)
        qft_medium = run_experiment(suite["QFT"], medium)
        assert qft_tiny.num_shuttles > qft_medium.num_shuttles
        assert qft_tiny.result.max_motional_energy > qft_medium.result.max_motional_energy

    def test_motional_error_dominates_background(self, records):
        """Figure 6g: gate error is dominated by the motional term."""

        supremacy = records["Supremacy"].result
        assert supremacy.mean_motional_error > supremacy.mean_background_error

    def test_shuttling_is_the_source_of_heating(self, records):
        """Apps with more shuttles accumulate more motional energy."""

        ordered = sorted(records.values(), key=lambda record: record.num_shuttles)
        assert ordered[0].result.max_motional_energy <= \
            ordered[-1].result.max_motional_energy


class TestSectionIXTopology:
    def test_linear_works_for_nearest_neighbour_apps(self, suite):
        """QAOA maps well onto the linear topology (Section IX.B)."""

        linear = run_experiment(suite["QAOA"],
                                ArchitectureConfig(topology="L4", trap_capacity=8))
        grid = run_experiment(suite["QAOA"],
                              ArchitectureConfig(topology="G2x2", trap_capacity=8))
        assert linear.fidelity >= grid.fidelity * 0.5
        assert linear.duration_seconds <= grid.duration_seconds * 1.5

    def test_topology_changes_communication_primitives(self, suite):
        """Grid devices cross junctions; linear devices pass through traps."""

        linear = ArchitectureConfig(topology="L4", trap_capacity=8)
        grid = ArchitectureConfig(topology="G2x2", trap_capacity=8)
        linear_record = run_experiment(suite["SquareRoot"], linear)
        grid_record = run_experiment(suite["SquareRoot"], grid)
        assert linear_record.result.count(OpKind.JUNCTION) == 0
        assert grid_record.result.count(OpKind.JUNCTION) > 0


class TestSectionXMicroarchitecture:
    def test_gs_beats_is_for_communication_heavy_apps(self, suite, base_config):
        """Gate-based swapping is superior to physical ion swapping (Fig. 8)."""

        gs = run_experiment(suite["QFT"], base_config)
        is_ = run_experiment(suite["QFT"], base_config.with_updates(reorder="IS"))
        assert gs.fidelity > is_.fidelity

    def test_gs_and_is_identical_for_qaoa(self, suite, base_config):
        """QAOA needs no reordering, so GS and IS coincide (Figure 8c)."""

        gs = run_experiment(suite["QAOA"], base_config)
        is_ = run_experiment(suite["QAOA"], base_config.with_updates(reorder="IS"))
        assert gs.fidelity == pytest.approx(is_.fidelity)
        assert gs.duration_seconds == pytest.approx(is_.duration_seconds)

    def test_fm_beats_am1_for_long_range_apps(self, suite, base_config):
        """FM (distance-independent) wins for QFT's long-range gates."""

        variants = run_gate_variants(suite["QFT"], base_config, gates=("AM1", "FM"))
        assert variants["FM"].fidelity > variants["AM1"].fidelity
        assert variants["FM"].duration_seconds < variants["AM1"].duration_seconds

    def test_am2_competitive_for_nearest_neighbour_apps(self, suite, base_config):
        """AM2's fast short-range gates suit QAOA (Section X.A)."""

        variants = run_gate_variants(suite["QAOA"], base_config, gates=("AM2", "FM"))
        assert variants["AM2"].duration_seconds < variants["FM"].duration_seconds
        assert variants["AM2"].fidelity >= variants["FM"].fidelity * 0.8

    def test_gate_choice_does_not_change_program(self, suite, base_config):
        variants = run_gate_variants(suite["Supremacy"], base_config)
        sizes = {record.program_size for record in variants.values()}
        assert len(sizes) == 1


class TestEndToEndConsistency:
    def test_records_expose_consistent_metrics(self, records):
        for record in records.values():
            result = record.result
            assert result.duration >= result.computation_time
            assert result.duration == pytest.approx(
                result.computation_time + result.communication_time)
            assert result.num_shuttles == record.num_shuttles
            assert 0.0 <= result.fidelity <= 1.0

    def test_every_application_compiles_and_runs(self, records, suite):
        assert set(records) == set(suite)
        for name, record in records.items():
            assert record.result.count(OpKind.GATE_2Q) == suite[name].num_two_qubit_gates

"""Unit tests for JSON serialisation of programs, results and sweeps."""

import json

import pytest

from repro.io import (
    SCHEMA_VERSION,
    check_schema_version,
    config_from_dict,
    config_to_dict,
    figure_bundle_to_dict,
    load_json,
    model_from_dict,
    model_to_dict,
    program_to_dict,
    records_to_json,
    result_to_dict,
    save_json,
)
from repro.toolflow import ArchitectureConfig, figure6, run_experiment


class TestProgramSerialization:
    def test_round_trip_structure(self, compiled_qft8, tmp_path):
        program, _ = compiled_qft8
        payload = program_to_dict(program)
        path = save_json(payload, tmp_path / "program.json")
        loaded = load_json(path)
        assert loaded["num_operations"] == len(program)
        assert len(loaded["operations"]) == len(program)
        assert loaded["circuit"] == program.circuit_name

    def test_operations_carry_kind_and_dependencies(self, compiled_qft8):
        program, _ = compiled_qft8
        payload = program_to_dict(program)
        for entry, op in zip(payload["operations"], program.operations):
            assert entry["kind"] == op.kind.value
            assert entry["dependencies"] == list(op.dependencies)

    def test_placement_serialised(self, compiled_qft8):
        program, _ = compiled_qft8
        payload = program_to_dict(program)
        assert set(payload["placement"]) == {"qubit_to_ion", "ion_to_trap", "trap_chains"}
        assert len(payload["placement"]["qubit_to_ion"]) == 8

    def test_json_serialisable(self, compiled_qft8):
        program, _ = compiled_qft8
        json.dumps(program_to_dict(program))


class TestResultSerialization:
    def test_metrics_present(self, simulated_qft8):
        _, _, result = simulated_qft8
        payload = result_to_dict(result)
        assert payload["fidelity"] == pytest.approx(result.fidelity)
        assert payload["duration_s"] == pytest.approx(result.duration_seconds)
        assert "timeline" not in payload

    def test_timeline_optional(self, simulated_qft8):
        _, _, result = simulated_qft8
        payload = result_to_dict(result, include_timeline=True)
        assert len(payload["timeline"]) == len(result.timeline)
        json.dumps(payload)

    def test_records_to_json(self, qaoa8, small_config):
        record = run_experiment(qaoa8, small_config)
        rows = records_to_json([record])
        assert rows[0]["application"] == qaoa8.name
        assert rows[0]["config"]["topology"] == small_config.topology
        json.dumps(rows)


class TestSchemaVersion:
    """Every persisted payload is stamped and round-trips its version."""

    def test_payloads_carry_schema_version(self, compiled_qft8, simulated_qft8,
                                           qaoa8, small_config):
        program, _ = compiled_qft8
        _, _, result = simulated_qft8
        assert program_to_dict(program)["schema_version"] == SCHEMA_VERSION
        assert result_to_dict(result)["schema_version"] == SCHEMA_VERSION
        record = run_experiment(qaoa8, small_config)
        assert records_to_json([record])[0]["schema_version"] == SCHEMA_VERSION

    def test_round_trip_preserves_version(self, simulated_qft8, tmp_path):
        _, _, result = simulated_qft8
        path = save_json(result_to_dict(result), tmp_path / "result.json")
        loaded = load_json(path)
        assert check_schema_version(loaded) == SCHEMA_VERSION
        # Re-saving a loaded payload keeps it readable (compat round trip).
        again = load_json(save_json(loaded, tmp_path / "copy.json"))
        assert again == loaded

    def test_pre_versioned_payloads_accepted(self):
        assert check_schema_version({"fidelity": 0.5}) == 0

    def test_future_version_rejected(self):
        with pytest.raises(ValueError, match="newer"):
            check_schema_version({"schema_version": SCHEMA_VERSION + 1})

    def test_malformed_version_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            check_schema_version({"schema_version": "two"})


class TestConfigModelRoundTrip:
    def test_config_round_trip_with_model(self):
        from dataclasses import replace

        base = ArchitectureConfig(topology="G2x2", trap_capacity=8, gate="PM",
                                  reorder="IS", buffer_ions=1)
        hot = replace(base.model, heating=replace(base.model.heating, k1=0.5))
        config = base.with_updates(model=hot)
        payload = json.loads(json.dumps(config_to_dict(config, include_model=True)))
        rebuilt = config_from_dict(payload)
        assert rebuilt == config
        assert rebuilt.model.heating.k1 == 0.5

    def test_model_round_trip_is_exact(self):
        from repro.models.params import PhysicalModel

        model = PhysicalModel()
        payload = json.loads(json.dumps(model_to_dict(model)))
        assert model_from_dict(payload) == model


class TestBundleSerialization:
    def test_figure_bundle(self, small_suite, tmp_path):
        bundle = figure6({"QFT": small_suite["QFT"]}, capacities=(6, 8),
                         base=ArchitectureConfig(topology="L3"))
        payload = figure_bundle_to_dict(bundle)
        assert payload["capacities"] == [6, 8]
        assert payload["config"]["topology"] == "L3"
        path = save_json(payload, tmp_path / "nested" / "fig6.json")
        assert path.exists()
        loaded = load_json(path)
        assert loaded["fidelity"]["QFT"] == payload["fidelity"]["QFT"]

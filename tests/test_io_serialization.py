"""Unit tests for JSON serialisation of programs, results and sweeps."""

import json

import pytest

from repro.io import (
    figure_bundle_to_dict,
    load_json,
    program_to_dict,
    records_to_json,
    result_to_dict,
    save_json,
)
from repro.toolflow import ArchitectureConfig, figure6, run_experiment


class TestProgramSerialization:
    def test_round_trip_structure(self, compiled_qft8, tmp_path):
        program, _ = compiled_qft8
        payload = program_to_dict(program)
        path = save_json(payload, tmp_path / "program.json")
        loaded = load_json(path)
        assert loaded["num_operations"] == len(program)
        assert len(loaded["operations"]) == len(program)
        assert loaded["circuit"] == program.circuit_name

    def test_operations_carry_kind_and_dependencies(self, compiled_qft8):
        program, _ = compiled_qft8
        payload = program_to_dict(program)
        for entry, op in zip(payload["operations"], program.operations):
            assert entry["kind"] == op.kind.value
            assert entry["dependencies"] == list(op.dependencies)

    def test_placement_serialised(self, compiled_qft8):
        program, _ = compiled_qft8
        payload = program_to_dict(program)
        assert set(payload["placement"]) == {"qubit_to_ion", "ion_to_trap", "trap_chains"}
        assert len(payload["placement"]["qubit_to_ion"]) == 8

    def test_json_serialisable(self, compiled_qft8):
        program, _ = compiled_qft8
        json.dumps(program_to_dict(program))


class TestResultSerialization:
    def test_metrics_present(self, simulated_qft8):
        _, _, result = simulated_qft8
        payload = result_to_dict(result)
        assert payload["fidelity"] == pytest.approx(result.fidelity)
        assert payload["duration_s"] == pytest.approx(result.duration_seconds)
        assert "timeline" not in payload

    def test_timeline_optional(self, simulated_qft8):
        _, _, result = simulated_qft8
        payload = result_to_dict(result, include_timeline=True)
        assert len(payload["timeline"]) == len(result.timeline)
        json.dumps(payload)

    def test_records_to_json(self, qaoa8, small_config):
        record = run_experiment(qaoa8, small_config)
        rows = records_to_json([record])
        assert rows[0]["application"] == qaoa8.name
        assert rows[0]["config"]["topology"] == small_config.topology
        json.dumps(rows)


class TestBundleSerialization:
    def test_figure_bundle(self, small_suite, tmp_path):
        bundle = figure6({"QFT": small_suite["QFT"]}, capacities=(6, 8),
                         base=ArchitectureConfig(topology="L3"))
        payload = figure_bundle_to_dict(bundle)
        assert payload["capacities"] == [6, 8]
        assert payload["config"]["topology"] == "L3"
        path = save_json(payload, tmp_path / "nested" / "fig6.json")
        assert path.exists()
        loaded = load_json(path)
        assert loaded["fidelity"]["QFT"] == payload["fidelity"]["QFT"]

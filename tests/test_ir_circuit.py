"""Unit tests for the Circuit IR container."""

import pytest

from repro.ir.circuit import Circuit
from repro.ir.gate import Gate


class TestConstruction:
    def test_empty_circuit(self):
        circuit = Circuit(3)
        assert circuit.num_qubits == 3
        assert circuit.num_gates == 0

    def test_invalid_qubit_count(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_append_and_len(self):
        circuit = Circuit(2)
        circuit.append(Gate("h", (0,)))
        circuit.append(Gate("cx", (0, 1)))
        assert len(circuit) == 2

    def test_add_builder(self):
        circuit = Circuit(2).add("h", 0).add("cx", 0, 1)
        assert circuit.num_two_qubit_gates == 1

    def test_add_with_params(self):
        circuit = Circuit(1).add("rz", 0, params=(0.25,))
        assert circuit[0].params == (0.25,)

    def test_out_of_range_qubit_rejected(self):
        circuit = Circuit(2)
        with pytest.raises(ValueError):
            circuit.add("h", 2)

    def test_extend(self):
        circuit = Circuit(2)
        circuit.extend([Gate("h", (0,)), Gate("h", (1,))])
        assert circuit.num_single_qubit_gates == 2

    def test_compose_offsets_qubits(self):
        inner = Circuit(2).add("cx", 0, 1)
        outer = Circuit(4)
        outer.compose(inner, qubit_offset=2)
        assert outer[0].qubits == (2, 3)

    def test_compose_overflow_rejected(self):
        inner = Circuit(3).add("h", 2)
        with pytest.raises(ValueError):
            Circuit(3).compose(inner, qubit_offset=1)

    def test_copy_is_independent(self):
        circuit = Circuit(2).add("h", 0)
        clone = circuit.copy()
        clone.add("h", 1)
        assert len(circuit) == 1
        assert len(clone) == 2


class TestStatistics:
    @pytest.fixture
    def circuit(self):
        c = Circuit(4, name="stats")
        c.add("h", 0)
        c.add("cx", 0, 1)
        c.add("cx", 0, 1)
        c.add("cz", 2, 3)
        c.add("measure", 0)
        return c

    def test_counts(self, circuit):
        assert circuit.num_gates == 5
        assert circuit.num_two_qubit_gates == 3
        assert circuit.num_single_qubit_gates == 1
        assert circuit.num_measurements == 1

    def test_gate_counts_histogram(self, circuit):
        counts = circuit.gate_counts()
        assert counts["cx"] == 2
        assert counts["cz"] == 1

    def test_two_qubit_pairs(self, circuit):
        assert circuit.two_qubit_pairs() == [(0, 1), (0, 1), (2, 3)]

    def test_interaction_counts_undirected(self):
        c = Circuit(3)
        c.add("cx", 0, 1)
        c.add("cx", 1, 0)
        assert c.interaction_counts() == {(0, 1): 2}

    def test_qubits_used(self, circuit):
        assert circuit.qubits_used() == [0, 1, 2, 3]

    def test_depth(self):
        c = Circuit(3)
        c.add("h", 0)
        c.add("cx", 0, 1)
        c.add("cx", 1, 2)
        assert c.depth() == 3

    def test_two_qubit_depth_ignores_single_qubit_gates(self):
        c = Circuit(2)
        c.add("h", 0)
        c.add("h", 0)
        c.add("cx", 0, 1)
        assert c.two_qubit_depth() == 1

    def test_parallel_gates_share_depth(self):
        c = Circuit(4)
        c.add("cx", 0, 1)
        c.add("cx", 2, 3)
        assert c.depth() == 1

    def test_distance_histogram(self):
        c = Circuit(5)
        c.add("cx", 0, 4)
        c.add("cx", 1, 2)
        assert c.communication_distance_histogram() == {4: 1, 1: 1}

    def test_mean_interaction_distance(self):
        c = Circuit(5)
        c.add("cx", 0, 4)
        c.add("cx", 0, 2)
        assert c.mean_interaction_distance() == pytest.approx(3.0)

    def test_mean_interaction_distance_empty(self):
        assert Circuit(2).mean_interaction_distance() == 0.0


class TestTransformations:
    def test_with_measurements_adds_missing(self):
        c = Circuit(3).add("cx", 0, 1)
        measured = c.with_measurements()
        assert measured.num_measurements == 2  # qubits 0 and 1 are used

    def test_with_measurements_no_duplicates(self):
        c = Circuit(2).add("cx", 0, 1).add("measure", 0)
        assert c.with_measurements().num_measurements == 2

    def test_lowered_rewrites_swap(self):
        c = Circuit(2).add("swap", 0, 1)
        lowered = c.lowered()
        assert lowered.num_two_qubit_gates == 3
        assert all(g.name == "cx" for g in lowered.gates)

    def test_lowered_keeps_other_gates(self):
        c = Circuit(2).add("h", 0).add("cz", 0, 1)
        lowered = c.lowered()
        assert [g.name for g in lowered.gates] == ["h", "cz"]

    def test_remapped(self):
        c = Circuit(2).add("cx", 0, 1)
        remapped = c.remapped({0: 1, 1: 0})
        assert remapped[0].qubits == (1, 0)

    def test_iteration_and_indexing(self):
        c = Circuit(2).add("h", 0).add("h", 1)
        assert [g.qubits[0] for g in c] == [0, 1]
        assert c[1].qubits == (1,)

"""Unit tests for the dependency DAG."""

import pytest

from repro.ir.circuit import Circuit
from repro.ir.dag import DependencyDAG


@pytest.fixture
def chain_circuit():
    """cx(0,1); cx(1,2); cx(2,3) -- a pure dependency chain."""

    c = Circuit(4)
    c.add("cx", 0, 1)
    c.add("cx", 1, 2)
    c.add("cx", 2, 3)
    return c


@pytest.fixture
def parallel_circuit():
    """Two independent gates followed by one joining them."""

    c = Circuit(4)
    c.add("cx", 0, 1)
    c.add("cx", 2, 3)
    c.add("cx", 1, 2)
    return c


class TestStructure:
    def test_chain_dependencies(self, chain_circuit):
        dag = DependencyDAG(chain_circuit)
        assert dag.predecessors(0) == ()
        assert dag.predecessors(1) == (0,)
        assert dag.predecessors(2) == (1,)

    def test_successors(self, chain_circuit):
        dag = DependencyDAG(chain_circuit)
        assert dag.successors(0) == (1,)
        assert dag.successors(2) == ()

    def test_parallel_roots(self, parallel_circuit):
        dag = DependencyDAG(parallel_circuit)
        assert dag.roots() == [0, 1]
        assert set(dag.predecessors(2)) == {0, 1}

    def test_in_degrees(self, parallel_circuit):
        dag = DependencyDAG(parallel_circuit)
        assert dag.in_degrees() == [0, 0, 2]

    def test_num_gates(self, chain_circuit):
        assert DependencyDAG(chain_circuit).num_gates == 3


class TestTraversal:
    def test_topological_order_matches_program_order(self, qft8):
        dag = DependencyDAG(qft8)
        assert dag.topological_order() == list(range(len(qft8)))

    def test_ready_frontier_initial(self, parallel_circuit):
        dag = DependencyDAG(parallel_circuit)
        assert dag.ready_frontier(set()) == [0, 1]

    def test_ready_frontier_progresses(self, parallel_circuit):
        dag = DependencyDAG(parallel_circuit)
        assert dag.ready_frontier({0, 1}) == [2]

    def test_layers_partition_all_gates(self, qft8):
        dag = DependencyDAG(qft8)
        layers = dag.layers()
        flattened = [index for layer in layers for index in layer]
        assert sorted(flattened) == list(range(len(qft8)))

    def test_layers_are_independent(self, parallel_circuit):
        dag = DependencyDAG(parallel_circuit)
        layers = dag.layers()
        assert layers[0] == [0, 1]
        assert layers[1] == [2]

    def test_critical_path_unweighted(self, chain_circuit):
        assert DependencyDAG(chain_circuit).critical_path_length() == 3

    def test_critical_path_weighted(self, chain_circuit):
        dag = DependencyDAG(chain_circuit)
        assert dag.critical_path_length([2.0, 3.0, 4.0]) == pytest.approx(9.0)

    def test_critical_path_parallel(self, parallel_circuit):
        assert DependencyDAG(parallel_circuit).critical_path_length() == 2

    def test_iter_program_order(self, chain_circuit):
        dag = DependencyDAG(chain_circuit)
        assert list(dag.iter_program_order()) == [0, 1, 2]

    def test_empty_circuit(self):
        dag = DependencyDAG(Circuit(2))
        assert dag.topological_order() == []
        assert dag.critical_path_length() == 0.0

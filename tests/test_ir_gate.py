"""Unit tests for the Gate IR node."""

import pytest

from repro.ir.gate import (
    Gate,
    GateKind,
    SINGLE_QUBIT_NAMES,
    TWO_QUBIT_NAMES,
    classify,
)


class TestClassify:
    def test_single_qubit_names(self):
        for name in ("h", "x", "rz", "t", "sdg"):
            assert classify(name) is GateKind.SINGLE_QUBIT

    def test_two_qubit_names(self):
        for name in ("cx", "cz", "ms", "rzz", "swap"):
            assert classify(name) is GateKind.TWO_QUBIT

    def test_measurement(self):
        assert classify("measure") is GateKind.MEASUREMENT

    def test_case_insensitive(self):
        assert classify("CX") is GateKind.TWO_QUBIT
        assert classify("H") is GateKind.SINGLE_QUBIT

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            classify("frobnicate")

    def test_name_sets_disjoint(self):
        assert not (SINGLE_QUBIT_NAMES & TWO_QUBIT_NAMES)


class TestGateConstruction:
    def test_single_qubit_gate(self):
        gate = Gate("h", (3,))
        assert gate.is_single_qubit
        assert not gate.is_two_qubit
        assert gate.kind is GateKind.SINGLE_QUBIT

    def test_two_qubit_gate(self):
        gate = Gate("cx", (0, 1))
        assert gate.is_two_qubit
        assert gate.qubits == (0, 1)

    def test_measurement_gate(self):
        gate = Gate("measure", (2,))
        assert gate.is_measurement

    def test_params_stored(self):
        gate = Gate("rz", (0,), (0.5,))
        assert gate.params == (0.5,)

    def test_wrong_arity_single(self):
        with pytest.raises(ValueError):
            Gate("h", (0, 1))

    def test_wrong_arity_two_qubit(self):
        with pytest.raises(ValueError):
            Gate("cx", (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_negative_qubit_rejected(self):
        with pytest.raises(ValueError):
            Gate("h", (-1,))

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            Gate("nonsense", (0,))

    def test_barrier_requires_qubits(self):
        with pytest.raises(ValueError):
            Gate("barrier", ())

    def test_gate_is_hashable_and_frozen(self):
        gate = Gate("cx", (0, 1))
        assert hash(gate) == hash(Gate("cx", (0, 1)))
        with pytest.raises(AttributeError):
            gate.name = "cz"


class TestGateProperties:
    def test_symmetric_gates(self):
        assert Gate("cz", (0, 1)).is_symmetric
        assert Gate("rzz", (0, 1), (0.3,)).is_symmetric
        assert not Gate("cx", (0, 1)).is_symmetric

    def test_remap(self):
        gate = Gate("cx", (0, 1))
        remapped = gate.remap({0: 5, 1: 7})
        assert remapped.qubits == (5, 7)
        assert remapped.name == "cx"

    def test_remap_preserves_params(self):
        gate = Gate("rz", (2,), (1.5,))
        assert gate.remap({2: 0}).params == (1.5,)

    def test_str_contains_name(self):
        assert "cx" in str(Gate("cx", (0, 1)))

"""Unit tests for the OpenQASM 2.0 subset reader/writer."""

import math

import pytest

from repro.ir import qasm
from repro.ir.circuit import Circuit


SAMPLE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
cz q[1], q[2];
measure q[0] -> c[0];
"""


class TestLoads:
    def test_basic_parse(self):
        circuit = qasm.loads(SAMPLE)
        assert circuit.num_qubits == 3
        assert circuit.num_two_qubit_gates == 2
        assert circuit.num_measurements == 1

    def test_parameter_evaluation(self):
        circuit = qasm.loads(SAMPLE)
        rz = [g for g in circuit.gates if g.name == "rz"][0]
        assert rz.params[0] == pytest.approx(math.pi / 4)

    def test_comments_ignored(self):
        text = "OPENQASM 2.0;\nqreg q[1];\n// a comment\nh q[0]; // trailing\n"
        assert qasm.loads(text).num_gates == 1

    def test_barrier_skipped(self):
        text = "OPENQASM 2.0;\nqreg q[2];\nbarrier q[0],q[1];\nh q[0];\n"
        assert qasm.loads(text).num_gates == 1

    def test_missing_qreg_raises(self):
        with pytest.raises(qasm.QasmError):
            qasm.loads("OPENQASM 2.0;\nh q[0];\n")

    def test_two_qregs_rejected(self):
        with pytest.raises(qasm.QasmError):
            qasm.loads("OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(qasm.QasmError):
            qasm.loads("OPENQASM 2.0;\nqreg q[2];\nthis is not qasm\n")

    def test_malicious_parameter_rejected(self):
        with pytest.raises(qasm.QasmError):
            qasm.loads('OPENQASM 2.0;\nqreg q[1];\nrz(__import__("os")) q[0];\n')

    def test_negative_parameter(self):
        circuit = qasm.loads("OPENQASM 2.0;\nqreg q[1];\nrz(-pi/2) q[0];\n")
        assert circuit[0].params[0] == pytest.approx(-math.pi / 2)


class TestDumps:
    def test_round_trip(self):
        original = Circuit(3, name="rt")
        original.add("h", 0)
        original.add("cx", 0, 1)
        original.add("rz", 2, params=(0.5,))
        original.add("measure", 1)
        text = qasm.dumps(original)
        parsed = qasm.loads(text)
        assert parsed.num_qubits == 3
        assert [g.name for g in parsed.gates] == [g.name for g in original.gates]
        assert parsed[2].params[0] == pytest.approx(0.5)

    def test_header_present(self):
        text = qasm.dumps(Circuit(1).add("h", 0))
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[1];" in text

    def test_measure_syntax(self):
        text = qasm.dumps(Circuit(2).add("measure", 1))
        assert "measure q[1] -> c[1];" in text


class TestFiles:
    def test_dump_and_load(self, tmp_path):
        circuit = Circuit(2, name="file").add("h", 0).add("cx", 0, 1)
        path = tmp_path / "circuit.qasm"
        qasm.dump(circuit, path)
        loaded = qasm.load(path)
        assert loaded.num_two_qubit_gates == 1

    def test_qft_round_trip(self, qft8):
        text = qasm.dumps(qft8)
        parsed = qasm.loads(text, name="qft8")
        assert parsed.num_two_qubit_gates == qft8.num_two_qubit_gates
        assert parsed.num_qubits == qft8.num_qubits

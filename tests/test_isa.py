"""Unit tests for the QCCD ISA: operations and the compiled program container."""

import pytest

from repro.isa.operations import (
    GateOp,
    IonSwapOp,
    JunctionCrossOp,
    MergeOp,
    MeasureOp,
    MoveOp,
    OpKind,
    SplitOp,
    SwapGateOp,
)
from repro.isa.program import InitialPlacement, QCCDProgram


class TestOpKind:
    def test_communication_classification(self):
        assert OpKind.SPLIT.is_communication
        assert OpKind.MOVE.is_communication
        assert OpKind.SWAP_GATE.is_communication
        assert OpKind.ION_SWAP.is_communication
        assert not OpKind.GATE_2Q.is_communication
        assert not OpKind.MEASURE.is_communication


class TestOperationValidation:
    def test_gate_op_fields(self):
        op = GateOp(op_id=0, trap="T0", ions=(1, 2), qubits=(1, 2), name="cx",
                    chain_length=4, ion_distance=1)
        assert op.is_two_qubit
        assert op.kind is OpKind.GATE_2Q
        assert op.resources == ("T0",)

    def test_single_qubit_gate_kind(self):
        op = GateOp(op_id=0, trap="T0", ions=(1,), qubits=(1,), name="h", chain_length=1)
        assert op.kind is OpKind.GATE_1Q

    def test_gate_op_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            GateOp(op_id=0, trap="T0", ions=(1, 2), qubits=(1, 2), name="cx",
                   chain_length=3, ion_distance=5)

    def test_gate_op_requires_trap(self):
        with pytest.raises(ValueError):
            GateOp(op_id=0, ions=(1,), qubits=(1,), name="h", chain_length=1)

    def test_gate_op_arity_mismatch(self):
        with pytest.raises(ValueError):
            GateOp(op_id=0, trap="T0", ions=(1, 2), qubits=(1,), name="cx", chain_length=2)

    def test_dependencies_must_be_earlier(self):
        with pytest.raises(ValueError):
            SplitOp(op_id=3, dependencies=(5,), trap="T0", ion=0, chain_size=2)

    def test_swap_gate_constants(self):
        assert SwapGateOp.MS_GATES_PER_SWAP == 3
        op = SwapGateOp(op_id=0, trap="T0", ions=(0, 1), qubits=(0, 1),
                        chain_length=5, ion_distance=3)
        assert op.kind is OpKind.SWAP_GATE

    def test_swap_gate_distinct_ions(self):
        with pytest.raises(ValueError):
            SwapGateOp(op_id=0, trap="T0", ions=(1, 1), qubits=(0, 1), chain_length=3)

    def test_split_validation(self):
        with pytest.raises(ValueError):
            SplitOp(op_id=0, trap="T0", ion=0, chain_size=0)
        with pytest.raises(ValueError):
            SplitOp(op_id=0, trap="T0", ion=0, chain_size=2, side="middle")

    def test_move_validation(self):
        op = MoveOp(op_id=0, ion=0, segment="S1", length=2, from_node="T0", to_node="J0")
        assert op.resources == ("S1",)
        with pytest.raises(ValueError):
            MoveOp(op_id=0, ion=0, segment="S1", length=0)

    def test_junction_validation(self):
        op = JunctionCrossOp(op_id=0, ion=0, junction="J0", junction_degree=4)
        assert op.resources == ("J0",)
        with pytest.raises(ValueError):
            JunctionCrossOp(op_id=0, ion=0, junction="", junction_degree=3)

    def test_merge_and_measure(self):
        assert MergeOp(op_id=0, trap="T1", ion=2, side="head").kind is OpKind.MERGE
        assert MeasureOp(op_id=0, trap="T1", ion=2, qubit=2).kind is OpKind.MEASURE

    def test_ion_swap_validation(self):
        op = IonSwapOp(op_id=0, trap="T0", ions=(0, 1), chain_size=4)
        assert op.kind is OpKind.ION_SWAP
        with pytest.raises(ValueError):
            IonSwapOp(op_id=0, trap="T0", ions=(0, 0), chain_size=4)


class TestInitialPlacement:
    def test_consistent_placement(self):
        placement = InitialPlacement(
            qubit_to_ion={0: 0, 1: 1},
            ion_to_trap={0: "T0", 1: "T1"},
            trap_chains={"T0": (0,), "T1": (1,)},
        )
        assert placement.trap_of_qubit(1) == "T1"
        assert placement.occupancy() == {"T0": 1, "T1": 1}

    def test_ion_in_two_chains_rejected(self):
        with pytest.raises(ValueError):
            InitialPlacement(qubit_to_ion={}, ion_to_trap={},
                             trap_chains={"T0": (0,), "T1": (0,)})

    def test_ion_trap_mismatch_rejected(self):
        with pytest.raises(ValueError):
            InitialPlacement(qubit_to_ion={0: 0}, ion_to_trap={0: "T1"},
                             trap_chains={"T0": (0,), "T1": ()})

    def test_qubit_on_unplaced_ion_rejected(self):
        with pytest.raises(ValueError):
            InitialPlacement(qubit_to_ion={0: 7}, ion_to_trap={},
                             trap_chains={"T0": ()})


class TestQCCDProgram:
    @pytest.fixture
    def program(self):
        placement = InitialPlacement(
            qubit_to_ion={0: 0, 1: 1},
            ion_to_trap={0: "T0", 1: "T0"},
            trap_chains={"T0": (0, 1), "T1": ()},
        )
        ops = [
            GateOp(op_id=0, trap="T0", ions=(0,), qubits=(0,), name="h", chain_length=2),
            GateOp(op_id=1, dependencies=(0,), trap="T0", ions=(0, 1), qubits=(0, 1),
                   name="cx", chain_length=2),
            SplitOp(op_id=2, dependencies=(1,), trap="T0", ion=1, chain_size=2),
            MoveOp(op_id=3, dependencies=(2,), ion=1, segment="S0",
                   from_node="T0", to_node="T1"),
            MergeOp(op_id=4, dependencies=(3,), trap="T1", ion=1),
        ]
        return QCCDProgram(operations=ops, placement=placement, circuit_name="demo")

    def test_counts(self, program):
        assert len(program) == 5
        assert program.num_two_qubit_gates == 1
        assert program.num_shuttles == 1
        assert program.num_communication_ops == 3

    def test_communication_summary(self, program):
        summary = program.communication_summary()
        assert summary["splits"] == 1
        assert summary["moves"] == 1
        assert summary["merges"] == 1
        assert summary["swap_gates"] == 0

    def test_validate_passes(self, program):
        program.validate()

    def test_validate_rejects_unknown_ion(self, program):
        program.operations.append(
            MergeOp(op_id=5, trap="T1", ion=99))
        with pytest.raises(ValueError):
            program.validate()

    def test_dense_ids_enforced(self, program):
        with pytest.raises(ValueError):
            QCCDProgram(operations=[program.operations[1]], placement=program.placement)

    def test_iteration_and_indexing(self, program):
        assert program[0].kind is OpKind.GATE_1Q
        assert [op.op_id for op in program] == [0, 1, 2, 3, 4]

"""Unit tests for the gate fidelity model (paper equation 1)."""

import math

import pytest

from repro.models.fidelity import FidelityModel, GateErrorBreakdown
from repro.models.params import FidelityParams


@pytest.fixture
def model():
    return FidelityModel(FidelityParams(
        background_heating_rate=1e-6,
        laser_instability_prefactor=1e-4,
        single_qubit_error=1e-4,
        measurement_error=3e-3,
    ))


class TestEquationOne:
    def test_background_term(self, model):
        breakdown = model.two_qubit_error(duration=200.0, chain_length=10,
                                          motional_energy=0.0)
        assert breakdown.background == pytest.approx(200.0 * 1e-6)

    def test_motional_term_cold_chain(self, model):
        breakdown = model.two_qubit_error(duration=0.0, chain_length=10,
                                          motional_energy=0.0)
        expected_a = 1e-4 * 10 / math.log(10)
        assert breakdown.motional == pytest.approx(expected_a)

    def test_motional_term_scales_with_energy(self, model):
        cold = model.two_qubit_error(duration=0.0, chain_length=10, motional_energy=0.0)
        hot = model.two_qubit_error(duration=0.0, chain_length=10, motional_energy=5.0)
        assert hot.motional == pytest.approx(cold.motional * 11.0)

    def test_fidelity_is_one_minus_total(self, model):
        breakdown = model.two_qubit_error(duration=100.0, chain_length=15,
                                          motional_energy=2.0)
        fidelity = model.two_qubit_fidelity(duration=100.0, chain_length=15,
                                            motional_energy=2.0)
        assert fidelity == pytest.approx(1.0 - breakdown.total)

    def test_fidelity_clamped_at_zero(self, model):
        fidelity = model.two_qubit_fidelity(duration=1e9, chain_length=20,
                                            motional_energy=1e6)
        assert fidelity == 0.0

    def test_negative_inputs_rejected(self, model):
        with pytest.raises(ValueError):
            model.two_qubit_error(duration=-1.0, chain_length=10, motional_energy=0.0)
        with pytest.raises(ValueError):
            model.two_qubit_error(duration=1.0, chain_length=10, motional_energy=-0.5)


class TestLaserInstability:
    def test_grows_with_chain_length(self, model):
        assert model.laser_instability(35) > model.laser_instability(20)

    def test_paper_ratio_20_to_35(self, model):
        """Section IX.A: A grows by ~1.5x from 20 to 35 ions."""

        ratio = model.laser_instability(35) / model.laser_instability(20)
        assert 1.4 < ratio < 1.6

    def test_requires_two_ions(self, model):
        with pytest.raises(ValueError):
            model.laser_instability(1)


class TestConstantErrors:
    def test_single_qubit_fidelity(self, model):
        assert model.single_qubit_fidelity() == pytest.approx(1.0 - 1e-4)

    def test_measurement_fidelity(self, model):
        assert model.measurement_fidelity() == pytest.approx(1.0 - 3e-3)

    def test_breakdown_properties(self):
        breakdown = GateErrorBreakdown(background=0.01, motional=0.02)
        assert breakdown.total == pytest.approx(0.03)
        assert breakdown.fidelity == pytest.approx(0.97)

    def test_breakdown_fidelity_clamped(self):
        assert GateErrorBreakdown(background=0.9, motional=0.9).fidelity == 0.0


class TestDefaults:
    def test_default_background_negligible_vs_motional(self):
        """Figure 6g: the motional term dominates the background term."""

        model = FidelityModel()
        breakdown = model.two_qubit_error(duration=250.0, chain_length=20,
                                          motional_energy=10.0)
        assert breakdown.motional > 5 * breakdown.background

    def test_default_isolated_gate_is_good(self):
        """A two-qubit gate in a cold, small chain should be ~99.9%+."""

        model = FidelityModel()
        fidelity = model.two_qubit_fidelity(duration=150.0, chain_length=15,
                                            motional_energy=0.0)
        assert fidelity > 0.999

    def test_params_validation(self):
        with pytest.raises(ValueError):
            FidelityModel(FidelityParams(single_qubit_error=1.5))
        with pytest.raises(ValueError):
            FidelityModel(FidelityParams(background_heating_rate=-1.0))

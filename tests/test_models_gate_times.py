"""Unit tests for the MS gate-time models (paper Section VII.A)."""

import pytest

from repro.models.gate_times import (
    FM_MIN_GATE_TIME,
    GateImplementation,
    MIN_GATE_TIME,
    am1_gate_time,
    am2_gate_time,
    fm_gate_time,
    gate_time,
    pm_gate_time,
)


class TestFormulas:
    def test_am1_matches_paper(self):
        # tau = 100*d - 22
        assert am1_gate_time(1) == pytest.approx(78.0)
        assert am1_gate_time(5) == pytest.approx(478.0)

    def test_am1_clamped_for_adjacent_ions(self):
        assert am1_gate_time(0) == MIN_GATE_TIME

    def test_am2_matches_paper(self):
        # tau = 38*d + 10
        assert am2_gate_time(0) == pytest.approx(10.0)
        assert am2_gate_time(10) == pytest.approx(390.0)

    def test_pm_matches_paper(self):
        # tau = 5*d + 160
        assert pm_gate_time(0) == pytest.approx(160.0)
        assert pm_gate_time(20) == pytest.approx(260.0)

    def test_fm_matches_paper(self):
        # tau = max(13.33*N - 54, 100)
        assert fm_gate_time(20) == pytest.approx(13.33 * 20 - 54)
        assert fm_gate_time(30) == pytest.approx(13.33 * 30 - 54)

    def test_fm_floor_below_12_ions(self):
        assert fm_gate_time(2) == FM_MIN_GATE_TIME
        assert fm_gate_time(11) == FM_MIN_GATE_TIME

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            am1_gate_time(-1)

    def test_fm_chain_too_short(self):
        with pytest.raises(ValueError):
            fm_gate_time(1)


class TestScalingTrends:
    def test_am_gates_grow_with_distance(self):
        assert am1_gate_time(10) > am1_gate_time(2)
        assert am2_gate_time(10) > am2_gate_time(2)

    def test_pm_weak_distance_dependence(self):
        # PM grows much more slowly with distance than AM1 (5 vs 100 us/ion).
        pm_growth = pm_gate_time(20) - pm_gate_time(0)
        am1_growth = am1_gate_time(20) - am1_gate_time(0)
        assert pm_growth * 10 < am1_growth

    def test_fm_independent_of_distance(self):
        assert gate_time("FM", distance=0, chain_length=20) == gate_time(
            "FM", distance=15, chain_length=20)

    def test_fm_grows_with_chain_length(self):
        assert fm_gate_time(35) > fm_gate_time(20) > fm_gate_time(15)

    def test_am_faster_than_fm_for_adjacent_ions_in_long_chains(self):
        # The reason AM2 wins for nearest-neighbour workloads like QAOA.
        assert am2_gate_time(0) < fm_gate_time(20)

    def test_fm_faster_than_am1_for_distant_ions(self):
        # The reason FM wins for long-range workloads like QFT.
        assert fm_gate_time(20) < am1_gate_time(15)


class TestDispatch:
    def test_from_name_accepts_strings(self):
        assert GateImplementation.from_name("fm") is GateImplementation.FM
        assert GateImplementation.from_name("Am1") is GateImplementation.AM1

    def test_from_name_accepts_enum(self):
        assert GateImplementation.from_name(GateImplementation.PM) is GateImplementation.PM

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError):
            GateImplementation.from_name("XX")

    def test_distance_dependence_flag(self):
        assert GateImplementation.AM1.is_distance_dependent
        assert GateImplementation.PM.is_distance_dependent
        assert not GateImplementation.FM.is_distance_dependent

    @pytest.mark.parametrize("impl", ["AM1", "AM2", "PM", "FM"])
    def test_gate_time_positive(self, impl):
        assert gate_time(impl, distance=3, chain_length=10) > 0

    def test_gate_time_validates_chain(self):
        with pytest.raises(ValueError):
            gate_time("FM", distance=0, chain_length=1)

    def test_gate_time_validates_distance_vs_chain(self):
        with pytest.raises(ValueError):
            gate_time("AM1", distance=9, chain_length=10)

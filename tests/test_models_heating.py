"""Unit tests for the motional heating model (paper Section VII.B)."""

import pytest

from repro.models.heating import HeatingModel
from repro.models.params import HeatingParams


@pytest.fixture
def model():
    return HeatingModel(HeatingParams(k1=0.1, k2=0.01, k_junction=0.01))


class TestSplit:
    def test_energy_conserved_plus_k1_each(self, model):
        remaining, split = model.split(chain_energy=1.0, chain_size=10, split_size=1)
        # Conservation: the pre-existing energy is divided, each part gains k1.
        assert remaining + split == pytest.approx(1.0 + 2 * 0.1)

    def test_proportional_division(self, model):
        remaining, split = model.split(chain_energy=2.0, chain_size=4, split_size=1)
        assert split == pytest.approx(2.0 * 0.25 + 0.1)
        assert remaining == pytest.approx(2.0 * 0.75 + 0.1)

    def test_cold_chain_split(self, model):
        remaining, split = model.split(0.0, 5, 1)
        assert remaining == pytest.approx(0.1)
        assert split == pytest.approx(0.1)

    def test_split_whole_chain(self, model):
        remaining, split = model.split(1.0, 3, 3)
        assert remaining == 0.0
        assert split == pytest.approx(1.1)

    def test_invalid_sizes(self, model):
        with pytest.raises(ValueError):
            model.split(0.0, 0, 1)
        with pytest.raises(ValueError):
            model.split(0.0, 3, 4)
        with pytest.raises(ValueError):
            model.split(0.0, 3, 0)

    def test_negative_energy_rejected(self, model):
        with pytest.raises(ValueError):
            model.split(-1.0, 3, 1)


class TestMergeAndMove:
    def test_merge_sums_plus_k1(self, model):
        assert model.merge(0.5, 0.3) == pytest.approx(0.8 + 0.1)

    def test_merge_cold_chains(self, model):
        assert model.merge(0.0, 0.0) == pytest.approx(0.1)

    def test_move_adds_k2_per_segment(self, model):
        assert model.move(0.0, 3) == pytest.approx(0.03)

    def test_move_zero_segments(self, model):
        assert model.move(0.5, 0) == pytest.approx(0.5)

    def test_junction_crossing(self, model):
        assert model.cross_junction(0.2, 2) == pytest.approx(0.22)

    def test_idle_background(self):
        model = HeatingModel(HeatingParams(background_rate=1e-5))
        assert model.idle(0.0, 1000.0) == pytest.approx(0.01)

    def test_negative_inputs_rejected(self, model):
        with pytest.raises(ValueError):
            model.merge(-0.1, 0.0)
        with pytest.raises(ValueError):
            model.move(-0.1, 1)
        with pytest.raises(ValueError):
            model.move(0.1, -1)
        with pytest.raises(ValueError):
            model.idle(0.0, -1.0)


class TestCompositeCosts:
    def test_shuttle_energy_cost(self, model):
        assert model.shuttle_energy_cost(5, 2) == pytest.approx(5 * 0.01 + 2 * 0.01)

    def test_round_trip_adds_fixed_heat(self, model):
        """A split followed by a merge back adds 3*k1 to the system in total."""

        remaining, split = model.split(1.0, 10, 1)
        merged = model.merge(remaining, split)
        assert merged == pytest.approx(1.0 + 3 * 0.1)

    def test_ion_swap_hop_cost(self, model):
        """One IS hop (split pair, merge back) adds 3*k1 regardless of energy."""

        for energy in (0.0, 1.0, 7.5):
            remaining, pair = model.split(energy, 8, 2)
            assert model.merge(remaining, pair) == pytest.approx(energy + 0.3)

    def test_paper_default_constants(self):
        params = HeatingParams()
        assert params.k1 == pytest.approx(0.1)
        assert params.k2 == pytest.approx(0.01)

    def test_validation_rejects_negative_constants(self):
        with pytest.raises(ValueError):
            HeatingModel(HeatingParams(k1=-0.1))

"""Unit tests for the physical model parameter dataclasses."""

import pytest

from repro.models.params import (
    FidelityParams,
    HeatingParams,
    PhysicalModel,
    ShuttleTimes,
    SingleQubitParams,
)
from repro.models.shuttle_times import TABLE1_ROWS, format_table1, operation_times


class TestShuttleTimes:
    def test_paper_table1_defaults(self):
        times = ShuttleTimes()
        assert times.move_segment == 5.0
        assert times.split == 80.0
        assert times.merge == 80.0
        assert times.cross_y_junction == 100.0
        assert times.cross_x_junction == 120.0

    def test_junction_time_by_degree(self):
        times = ShuttleTimes()
        assert times.junction_time(3) == 100.0
        assert times.junction_time(4) == 120.0
        assert times.junction_time(5) == 120.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShuttleTimes(move_segment=0.0).validate()

    def test_operation_times_rows(self):
        rows = operation_times()
        assert len(rows) == len(TABLE1_ROWS) == 5
        assert rows["Splitting operation on a chain"] == 80.0

    def test_format_table1_mentions_all_rows(self):
        text = format_table1()
        for label, _ in TABLE1_ROWS:
            assert label in text


class TestHeatingParams:
    def test_paper_defaults(self):
        params = HeatingParams()
        assert params.k1 == 0.1
        assert params.k2 == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            HeatingParams(k2=-1.0).validate()


class TestFidelityParams:
    def test_defaults_valid(self):
        FidelityParams().validate()

    def test_invalid_measurement_error(self):
        with pytest.raises(ValueError):
            FidelityParams(measurement_error=1.0).validate()

    def test_invalid_min_fidelity(self):
        with pytest.raises(ValueError):
            FidelityParams(min_fidelity=2.0).validate()


class TestSingleQubitParams:
    def test_defaults_valid(self):
        SingleQubitParams().validate()

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            SingleQubitParams(gate_time=0.0).validate()


class TestPhysicalModel:
    def test_default_bundle_valid(self):
        PhysicalModel().validate()

    def test_frozen(self):
        model = PhysicalModel()
        with pytest.raises(AttributeError):
            model.shuttle = ShuttleTimes()

    def test_nested_validation_propagates(self):
        broken = PhysicalModel(shuttle=ShuttleTimes(split=-1.0))
        with pytest.raises(ValueError):
            broken.validate()

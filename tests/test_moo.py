"""Tests for the multi-objective DSE subsystem (repro.dse.moo).

Covers the contracts the subsystem is built around:

* objective vectors canonicalise every named metric to higher-is-better,
  and unknown names fail with the full valid set in the message;
* dominance/archive: the incremental archive equals the brute-force
  frontier for random vector sets (hypothesis) and is insertion-order
  invariant;
* hypervolume: exact 2-D/3-D values agree with hand computation and with
  a seeded Monte-Carlo estimate on random sets, and are order-independent;
* the EHVI/ParEGO proposers and strategies are deterministic for any
  ``--jobs`` value and for serial-vs-dispatched propose/evaluate runs
  (kill-one-worker variant driven through ``examples/dse_moo.py --smoke``,
  the ``moo-smoke`` CI job);
* store rows of a multi-objective run carry the objective list in their
  schema-v3 provenance, and canonical exports strip it;
* the committed golden store export regenerates byte-identically through
  the real ``dse run`` + ``dse export`` CLI.
"""

from __future__ import annotations

import json
import os
import random
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.dse import (
    DSERunner,
    DesignSpace,
    ExperimentStore,
    Shard,
    make_strategy,
    objective_value,
    run_adaptive_worker,
    run_proposer,
    write_manifest,
)
from repro.dse.moo import (
    EHVIProposer,
    ParEGOProposer,
    ParetoArchive,
    brute_force_frontier,
    cloud_rows,
    dominates,
    hypervolume,
    hypervolume_improvement,
    make_moo_proposer,
    normalise,
    objective_vector,
    parse_objectives,
    record_frontier,
    records_hypervolume,
    vector_bounds,
)

#: A fast 8-point space evaluated entirely with 8-qubit circuits.
TINY_SPACE = dict(apps=("QFT", "BV"), qubits=(8,), topologies=("L3",),
                  capacities=(6, 8), gates=("AM1", "FM"), reorders=("GS",))

OBJECTIVES = ("fidelity", "runtime")


def _space() -> DesignSpace:
    return DesignSpace(**TINY_SPACE)


def _rows(records):
    return [record.as_row() for record in records]


#: Hypothesis strategy: small collections of small-dimensional vectors.
def vector_sets(min_dim=2, max_dim=4, max_points=12):
    return st.integers(min_value=min_dim, max_value=max_dim).flatmap(
        lambda dim: st.lists(
            st.tuples(*[st.integers(min_value=0, max_value=6)
                        for _ in range(dim)]).map(
                lambda t: tuple(float(v) for v in t)),
            min_size=1, max_size=max_points))


# --------------------------------------------------------------------------- #
class TestObjectives:
    def test_unknown_objective_lists_valid_set(self):
        record = DSERunner(_space()).evaluate(
            [next(_space().points())])[0]
        with pytest.raises(ValueError) as err:
            objective_value(record, "latency")
        message = str(err.value)
        for name in ("fidelity", "runtime", "comm_fraction",
                     "shuttles_per_2q"):
            assert name in message

    def test_new_objectives_are_selectable_and_canonical(self):
        records = DSERunner(_space()).evaluate(list(_space().points()))
        for record in records:
            comm = objective_value(record, "comm_fraction")
            shuttles = objective_value(record, "shuttles_per_2q")
            # Canonical higher-is-better: both overheads enter negated.
            assert comm <= 0.0
            assert shuttles <= 0.0
            assert comm == -record.result.communication_seconds / \
                record.result.duration_seconds
            assert shuttles == -record.num_shuttles / \
                record.result.num_ms_gates

    def test_objective_vector_matches_scalars(self):
        record = DSERunner(_space()).evaluate([next(_space().points())])[0]
        names = ("fidelity", "runtime", "comm_fraction", "shuttles_per_2q")
        vector = objective_vector(record, names)
        assert vector == tuple(objective_value(record, n) for n in names)

    def test_parse_objectives(self):
        assert parse_objectives("fidelity, runtime") == OBJECTIVES
        assert parse_objectives(["runtime", "fidelity"]) == \
            ("runtime", "fidelity")
        with pytest.raises(ValueError, match="unknown objective"):
            parse_objectives("fidelity,latency")
        with pytest.raises(ValueError, match="duplicate"):
            parse_objectives("fidelity,fidelity")
        with pytest.raises(ValueError, match="at least two"):
            parse_objectives("fidelity")

    def test_normalise_and_bounds(self):
        vectors = [(0.0, 10.0), (1.0, 20.0), (0.5, 10.0)]
        bounds = vector_bounds(vectors)
        assert bounds == ((0.0, 1.0), (10.0, 20.0))
        assert normalise((0.5, 15.0), bounds) == (0.5, 0.5)
        # Degenerate objective -> 0.5; out-of-range values clip to the box.
        assert normalise((2.0, 5.0), ((0.0, 1.0), (3.0, 3.0))) == (1.0, 0.5)

    def test_cli_metric_choices_mirror_objectives(self):
        # cli._OBJECTIVES avoids importing the dse package at parser build
        # time; this pins the mirror so a new objective cannot be
        # selectable via --objectives but rejected by --metric.
        from repro.cli import _OBJECTIVES
        from repro.dse.pareto import OBJECTIVES as CANONICAL

        assert _OBJECTIVES == CANONICAL

    def test_metric_cli_run_accepts_new_objectives(self, capsys):
        assert main(["dse", "run", "--apps", "QFT,BV", "--qubits", "8",
                     "--topologies", "L3", "--capacities", "6,8",
                     "--gates", "AM1,FM", "--metric", "shuttles_per_2q",
                     "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "Top 2 points by shuttles_per_2q" in out


# --------------------------------------------------------------------------- #
class TestDominanceAndArchive:
    def test_dominates_basics(self):
        assert dominates((1.0, 1.0), (0.0, 0.0))
        assert dominates((1.0, 0.0), (0.0, 0.0))
        assert not dominates((1.0, 0.0), (0.0, 1.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))  # equality: neither
        with pytest.raises(ValueError, match="dimension"):
            dominates((1.0,), (1.0, 2.0))

    @given(vector_sets())
    @settings(max_examples=60, deadline=None)
    def test_archive_equals_brute_force_frontier(self, vectors):
        archive = ParetoArchive(len(vectors[0]))
        archive.update(list(enumerate(vectors)))
        expected = {vectors[i] for i in brute_force_frontier(vectors)}
        assert set(archive.vectors()) == expected
        # Archive never holds a dominated or duplicate vector.
        kept = archive.vectors()
        assert len(set(kept)) == len(kept)
        for a in kept:
            assert not any(dominates(b, a) for b in kept)

    @given(vector_sets(), st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=60, deadline=None)
    def test_archive_is_insertion_order_invariant(self, vectors, seed):
        ordered = ParetoArchive(len(vectors[0]))
        ordered.update(list(enumerate(vectors)))
        shuffled_items = list(enumerate(vectors))
        random.Random(seed).shuffle(shuffled_items)
        shuffled = ParetoArchive(len(vectors[0]))
        shuffled.update(shuffled_items)
        assert set(ordered.vectors()) == set(shuffled.vectors())

    def test_equal_vectors_keep_the_first_key(self):
        archive = ParetoArchive(2)
        assert archive.add("a", (1.0, 2.0))
        assert not archive.add("b", (1.0, 2.0))
        assert archive.keys() == ["a"]

    def test_accepted_point_evicts_dominated(self):
        archive = ParetoArchive(2)
        archive.add("low", (0.0, 0.0))
        archive.add("mid", (1.0, 0.5))
        assert archive.add("high", (2.0, 1.0))
        assert archive.keys() == ["high"]
        assert not archive.would_accept((1.5, 0.5))
        assert archive.would_accept((0.0, 2.0))

    def test_validation(self):
        with pytest.raises(ValueError, match="dimension"):
            ParetoArchive(0)
        archive = ParetoArchive(2)
        with pytest.raises(ValueError, match="2-D"):
            archive.add("a", (1.0, 2.0, 3.0))


# --------------------------------------------------------------------------- #
class TestHypervolume:
    def test_known_2d_values(self):
        ref = (0.0, 0.0)
        assert hypervolume([(1.0, 1.0)], ref) == 1.0
        # Two trading-off points: 2x1 + 1x2 minus the 1x1 overlap.
        assert hypervolume([(2.0, 1.0), (1.0, 2.0)], ref) == 3.0
        # A dominated point adds nothing.
        assert hypervolume([(2.0, 1.0), (1.0, 2.0), (0.5, 0.5)], ref) == 3.0
        # Points at or below the reference contribute nothing.
        assert hypervolume([(0.0, 5.0), (-1.0, 2.0)], ref) == 0.0
        assert hypervolume([], ref) == 0.0

    def test_known_3d_values(self):
        ref = (0.0, 0.0, 0.0)
        assert hypervolume([(1.0, 1.0, 1.0)], ref) == 1.0
        assert hypervolume([(2.0, 1.0, 1.0), (1.0, 2.0, 1.0)], ref) == 3.0
        # Three mutually non-dominated unit-ish boxes, hand-computed via
        # inclusion-exclusion: 8 + 8 + 8 - 4 - 4 - 4 + 2 = 14.
        points = [(2.0, 2.0, 2.0)]
        assert hypervolume(points + [(1.0, 1.0, 1.0)], ref) == 8.0

    def test_dimension_checks(self):
        with pytest.raises(ValueError, match="at least two"):
            hypervolume([(1.0,)], (0.0,))
        with pytest.raises(ValueError, match="mismatch"):
            hypervolume([(1.0, 2.0, 3.0)], (0.0, 0.0))

    @given(vector_sets(min_dim=2, max_dim=3, max_points=8),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_monte_carlo_agreement(self, vectors, seed):
        """Exact 2-D/3-D hypervolume matches a seeded MC estimate."""

        dim = len(vectors[0])
        ref = (0.0,) * dim
        high = 7.0  # vectors draw from 0..6, so the box [0,7]^d covers all
        exact = hypervolume(vectors, ref)
        rng = random.Random(seed)
        trials = 4000
        hits = 0
        for _ in range(trials):
            sample = tuple(rng.uniform(0.0, high) for _ in range(dim))
            if any(all(s < v for s, v in zip(sample, vector))
                   for vector in vectors):
                hits += 1
        estimate = (hits / trials) * high ** dim
        tolerance = 4.0 * high ** dim / (trials ** 0.5)  # ~4 sigma
        assert abs(exact - estimate) <= tolerance

    @given(vector_sets(min_dim=2, max_dim=3, max_points=10),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=40, deadline=None)
    def test_order_independence_and_monotonicity(self, vectors, seed):
        ref = (-1.0,) * len(vectors[0])
        shuffled = list(vectors)
        random.Random(seed).shuffle(shuffled)
        assert hypervolume(vectors, ref) == hypervolume(shuffled, ref)
        # Adding any point never decreases the hypervolume.
        extra = tuple(float(v) for v in range(len(vectors[0])))
        assert hypervolume_improvement(vectors, extra, ref) >= 0.0

    @given(vector_sets(min_dim=2, max_dim=3, max_points=10),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=40, deadline=None)
    def test_improvement_equals_hypervolume_difference(self, vectors, seed):
        """The exclusive-contribution fast path matches hv(S+p) - hv(S)."""

        dim = len(vectors[0])
        ref = (-1.0,) * dim
        rng = random.Random(seed)
        candidate = tuple(float(rng.randint(0, 6)) for _ in range(dim))
        fast = hypervolume_improvement(vectors, candidate, ref)
        slow = hypervolume(list(vectors) + [candidate], ref) - \
            hypervolume(vectors, ref)
        assert fast == pytest.approx(max(0.0, slow), rel=1e-9, abs=1e-9)

    def test_improvement_of_dominated_point_is_zero(self):
        ref = (0.0, 0.0)
        vectors = [(2.0, 2.0)]
        assert hypervolume_improvement(vectors, (1.0, 1.0), ref) == 0.0
        # (3,1) adds only the 1x1 strip beyond x=2: hv 4 -> 5.
        assert hypervolume_improvement(vectors, (3.0, 1.0), ref) == 1.0


# --------------------------------------------------------------------------- #
class TestMOOProposers:
    @pytest.mark.parametrize("cls", [EHVIProposer, ParEGOProposer])
    def test_budget_and_no_repeats(self, cls):
        space = _space()
        proposer = cls(space, seed=0, batch_size=2, max_evals=6)
        seen = []
        while True:
            batch = proposer.next_batch()
            if batch is None:
                break
            seen.extend(batch.keys)
            proposer.ingest(batch, [(0.5, -0.1)] * len(batch.keys))
        assert len(seen) == len(set(seen)) == 6

    @pytest.mark.parametrize("cls", [EHVIProposer, ParEGOProposer])
    def test_proposal_sequence_is_deterministic(self, cls):
        space = _space()
        values = {index: (1.0 / (index + 1), -float(index % 3))
                  for index in range(space.size)}
        sequences = []
        for _ in range(2):
            proposer = cls(space, seed=3, batch_size=2, max_evals=6)
            sequence = []
            while True:
                batch = proposer.next_batch()
                if batch is None:
                    break
                sequence.append(batch.keys)
                proposer.ingest(batch, [values[k] for k in batch.keys])
            sequences.append((sequence, proposer.best(),
                              proposer.frontier()))
        assert sequences[0] == sequences[1]

    def test_frontier_is_nondominated_subset_of_observed(self):
        space = _space()
        proposer = EHVIProposer(space, seed=1, batch_size=4, max_evals=8)
        values = {index: (float(index % 3), -float(index % 5))
                  for index in range(space.size)}
        while True:
            batch = proposer.next_batch()
            if batch is None:
                break
            proposer.ingest(batch, [values[k] for k in batch.keys])
        frontier = proposer.frontier()
        observed = {key: values[key] for key in
                    [k for k, _ in frontier]}
        for key, vector in frontier:
            assert vector == observed[key]
            assert not any(dominates(values[other], vector)
                           for other, _ in frontier)

    def test_best_is_first_objective_tie_to_earliest(self):
        space = _space()
        proposer = ParEGOProposer(space, seed=0, batch_size=4, max_evals=4)
        batch = proposer.next_batch()
        proposer.ingest(batch, [(0.7, -1.0), (0.9, -2.0),
                                (0.9, -1.0), (0.1, 0.0)])
        assert proposer.best() == (batch.keys[1], 0.9)

    def test_ingest_validation(self):
        space = _space()
        proposer = EHVIProposer(space, seed=0, batch_size=2)
        batch = proposer.next_batch()
        with pytest.raises(ValueError, match="values"):
            proposer.ingest(batch, [(0.5, -0.1)])
        with pytest.raises(ValueError, match="2-D"):
            proposer.ingest(batch, [(0.5,), (0.2,)])

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            EHVIProposer(_space(), batch_size=0)
        with pytest.raises(ValueError, match="samples"):
            EHVIProposer(_space(), samples=0)
        with pytest.raises(ValueError, match="rho"):
            ParEGOProposer(_space(), rho=-1.0)
        with pytest.raises(ValueError, match="unknown objective"):
            EHVIProposer(_space(), objectives=("fidelity", "latency"))
        with pytest.raises(ValueError, match="unknown multi-objective"):
            make_moo_proposer(_space(), {"name": "bayes"})

    @pytest.mark.parametrize("name", ["ehvi", "parego"])
    def test_spec_round_trips_through_factory(self, name):
        space = _space()
        first = make_moo_proposer(space, {"name": name, "seed": 7,
                                          "objectives": ["runtime",
                                                         "fidelity"],
                                          "batch_size": 2})
        rebuilt = make_moo_proposer(space, first.spec())
        assert rebuilt.spec() == first.spec()
        assert rebuilt.objectives == ("runtime", "fidelity")
        # The generic adaptive factory covers the MOO names too.
        from repro.dse.adaptive.propose import make_proposer

        assert make_proposer(space, first.spec()).spec() == first.spec()


# --------------------------------------------------------------------------- #
class TestMOOStrategies:
    @pytest.mark.parametrize("name", ["ehvi", "parego"])
    def test_deterministic_for_any_jobs(self, name):
        outcomes = []
        for jobs in (1, 2):
            runner = DSERunner(_space(), jobs=jobs)
            result = runner.run(make_strategy(name, seed=5, batch_size=2))
            outcomes.append((_rows(result.evaluated), result.best.as_row(),
                             _rows(result.frontier), result.trace))
        assert outcomes[0] == outcomes[1]

    def test_reuses_store_across_runs(self):
        runner = DSERunner(_space())
        first = runner.run(make_strategy("ehvi", seed=2, batch_size=2))
        rerun = DSERunner(_space(), store=runner.store)
        second = rerun.run(make_strategy("ehvi", seed=2, batch_size=2))
        assert rerun.stats["evaluated"] == 0
        assert _rows(first.evaluated) == _rows(second.evaluated)
        assert _rows(first.frontier) == _rows(second.frontier)

    def test_refuses_static_shards(self):
        runner = DSERunner(_space(), shard=Shard(1, 2))
        with pytest.raises(ValueError, match="cannot be sharded"):
            runner.run(make_strategy("ehvi"))

    def test_objectives_flag_rejected_for_scalar_strategies(self):
        with pytest.raises(ValueError, match="only applies"):
            make_strategy("grid", objectives=("fidelity", "runtime"))

    def test_metric_flag_rejected_for_moo_strategies(self):
        # Symmetric with the check above: a silently dropped --metric
        # would search objectives the caller never asked for.
        with pytest.raises(ValueError, match="does not apply"):
            make_strategy("ehvi", metric="runtime")
        with pytest.raises(ValueError, match="does not apply"):
            make_strategy("parego", metric="comm_fraction")

    def test_custom_objectives_shape_the_archive(self):
        result = DSERunner(_space()).run(
            make_strategy("parego", seed=1, batch_size=2,
                          objectives=("fidelity", "shuttles_per_2q")))
        assert result.frontier
        vectors = [objective_vector(r, ("fidelity", "shuttles_per_2q"))
                   for r in result.frontier]
        for vector in vectors:
            assert not any(dominates(other, vector) for other in vectors
                           if other != vector)

    def test_provenance_records_objectives(self, tmp_path):
        with ExperimentStore(tmp_path / "store") as store:
            DSERunner(_space(), store=store).run(
                make_strategy("ehvi", seed=9, batch_size=2))
        reloaded = ExperimentStore(tmp_path / "store")
        stamps = [row.get("provenance") for row in reloaded.rows()]
        assert all(stamp is not None for stamp in stamps)
        assert all(stamp["strategy"] == "ehvi" for stamp in stamps)
        assert all(stamp["objectives"] == ["fidelity", "runtime"]
                   for stamp in stamps)
        # Canonical exports strip provenance, as for every schema-v3 row.
        assert all("provenance" not in row
                   for row in reloaded.export_rows())


# --------------------------------------------------------------------------- #
class TestRecordFrontiers:
    def _records(self):
        return DSERunner(_space()).evaluate(list(_space().points()))

    def test_record_frontier_matches_brute_force(self):
        records = self._records()
        vectors = [objective_vector(r, OBJECTIVES) for r in records]
        expected = {id(records[i]) for i in brute_force_frontier(vectors)}
        frontier = record_frontier(records, OBJECTIVES)
        assert {id(r) for r in frontier} == expected
        # Best-first: descending by vector.
        frontier_vectors = [objective_vector(r, OBJECTIVES)
                            for r in frontier]
        assert frontier_vectors == sorted(frontier_vectors, reverse=True)

    def test_cloud_rows_mark_dominated_and_sort_stably(self):
        records = self._records()
        rows = cloud_rows(records, OBJECTIVES)
        assert len(rows) == len(records)
        # Grouped by app (sorted), best-first within each app.
        apps = [row["application"] for row in rows]
        assert apps == sorted(apps)
        for app in set(apps):
            app_vectors = [tuple(row[f"objective_{name}"]
                                 for name in OBJECTIVES)
                           for row in rows if row["application"] == app]
            assert app_vectors == sorted(app_vectors, reverse=True)
        # The non-dominated rows of each app are exactly its frontier.
        for app in set(apps):
            app_records = [r for r in records if r.application == app]
            expected = len(record_frontier(app_records, OBJECTIVES))
            kept = sum(1 for row in rows
                       if row["application"] == app and not row["dominated"])
            assert kept == expected
        # Input order does not matter.
        shuffled = list(records)
        random.Random(3).shuffle(shuffled)
        assert cloud_rows(shuffled, OBJECTIVES) == rows

    def test_cloud_rows_tied_vectors_frontier_row_first(self):
        # Two records with byte-identical objective vectors: the archive
        # keeps the earlier one (dominated=False); the ordering must put
        # that frontier row before its tied dominated duplicate.
        class Stub:
            def __init__(self, name, fidelity, runtime):
                self.application = "app"
                self.fidelity = fidelity
                self.duration_seconds = runtime
                self._name = name

            def as_row(self):
                return {"application": self.application, "name": self._name}

        first = Stub("first", 0.9, 1.0)
        twin = Stub("twin", 0.9, 1.0)
        other = Stub("other", 0.8, 0.5)
        rows = cloud_rows([first, twin, other], OBJECTIVES)
        assert [row["name"] for row in rows] == ["first", "twin", "other"]
        assert [row["dominated"] for row in rows] == [False, True, False]

    def test_records_hypervolume_grows_with_the_frontier(self):
        records = self._records()
        frontier = record_frontier(records, OBJECTIVES)
        full = records_hypervolume(records, OBJECTIVES)
        assert full > 0.0
        assert records_hypervolume([], OBJECTIVES) == 0.0
        if len(frontier) < len(records):
            dominated_only = [r for r in records if r not in frontier]
            assert records_hypervolume(dominated_only + frontier,
                                       OBJECTIVES) == full


# --------------------------------------------------------------------------- #
class TestMOOProtocol:
    def test_dispatched_run_matches_serial(self, tmp_path):
        """Single-process vs propose/evaluate: identical rows and frontier."""

        space = _space()
        strategy = {"name": "ehvi", "seed": 5,
                    "objectives": ["fidelity", "runtime"], "batch_size": 2}
        with ExperimentStore(tmp_path / "serial") as store:
            serial_runner = DSERunner(space, store=store)
            serial = serial_runner.run(
                make_strategy("ehvi", seed=5, batch_size=2))

        store_dir = tmp_path / "dispatched"
        write_manifest(store_dir, space, mode="adaptive",
                       strategy=strategy, ttl_s=60.0)
        worker = threading.Thread(
            target=run_adaptive_worker, args=(store_dir,),
            kwargs=dict(owner="threaded-worker", idle_wait_s=0.02))
        worker.start()
        summary = run_proposer(store_dir, poll_s=0.02)
        worker.join(timeout=120.0)
        assert not worker.is_alive()

        assert summary["evaluations"] == serial_runner.stats["evaluated"]
        assert summary["objectives"] == ["fidelity", "runtime"]
        # The complete marker's frontier matches the serial archive.
        serial_frontier = sorted(
            (row["application"], row["capacity"], row["gate"])
            for row in _rows(serial.frontier))
        dispatched_frontier = sorted(
            (entry["point"]["app"].lower() + "8",
             entry["point"]["config"]["trap_capacity"],
             entry["point"]["config"]["gate"])
            for entry in summary["frontier"])
        assert dispatched_frontier == serial_frontier
        # Byte-identical canonical exports.
        assert ExperimentStore(tmp_path / "serial").export_rows() == \
            ExperimentStore(store_dir).export_rows()
        # Raw rows agree too: dispatched workers stamp the same schema-v3
        # provenance (objectives included) as the in-process driver.
        serial_rows = {row["fingerprint"]: row["provenance"] for row in
                       ExperimentStore(tmp_path / "serial").rows()}
        dispatched_rows = {row["fingerprint"]: row["provenance"] for row in
                           ExperimentStore(store_dir).rows()}
        assert dispatched_rows == serial_rows
        assert all(stamp["objectives"] == ["fidelity", "runtime"]
                   for stamp in dispatched_rows.values())

    def test_kill_one_worker_matches_serial_run(self):
        """The acceptance scenario, via the single source of truth.

        ``examples/dse_moo.py --smoke`` (also the CI ``moo-smoke`` job)
        runs: seeded EHVI recovers the 24-point grid's exact 2-D frontier
        in under half the grid's evaluations, and a 3-worker
        propose/evaluate dispatch with one worker SIGKILLed mid-batch
        exports byte-identically to the serial run.  This test drives that
        script exactly like ``tests/test_adaptive.py`` drives the adaptive
        smoke.
        """

        import subprocess
        import sys

        repo_root = Path(__file__).resolve().parents[1]
        env = os.environ.copy()
        src = str(repo_root / "src")
        env["PYTHONPATH"] = (src if "PYTHONPATH" not in env
                             else src + os.pathsep + env["PYTHONPATH"])
        result = subprocess.run(
            [sys.executable, str(repo_root / "examples" / "dse_moo.py"),
             "--smoke"],
            capture_output=True, text=True, env=env, timeout=600.0)
        assert result.returncode == 0, \
            f"smoke failed:\n{result.stdout}\n{result.stderr}"
        assert "SIGKILLed worker" in result.stdout
        assert "byte-identical to the serial run" in result.stdout


# --------------------------------------------------------------------------- #
class TestGoldenStoreExport:
    def test_cli_regenerates_the_committed_export_byte_identically(
            self, tmp_path):
        """``dse run`` + ``dse export`` reproduce tests/data's golden bytes.

        The scaled-down first step of the ROADMAP "figure regeneration
        through a committed experiment store" item: CI diffs stored
        metrics instead of trusting the run that produced them.  Any
        intentional output change must regenerate the golden via
        ``tests/data/regen_store_export.py``.
        """

        import sys

        data_dir = Path(__file__).parent / "data"
        sys.path.insert(0, str(data_dir))
        try:
            from regen_store_export import GOLDEN_PATH, regenerate
        finally:
            sys.path.pop(0)
        fresh = tmp_path / "export.json"
        regenerate(fresh)
        assert fresh.read_bytes() == GOLDEN_PATH.read_bytes()


# --------------------------------------------------------------------------- #
class TestMOOCli:
    def test_run_strategy_ehvi_prints_frontier(self, capsys, tmp_path):
        assert main(["dse", "run", "--apps", "QFT,BV", "--qubits", "8",
                     "--topologies", "L3", "--capacities", "6,8",
                     "--gates", "AM1,FM", "--strategy", "ehvi",
                     "--seed", "1", "--batch-size", "2",
                     "--objectives", "fidelity,runtime",
                     "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "Strategy    : ehvi" in out
        assert "objectives fidelity,runtime" in out
        assert "Pareto frontier over (fidelity, runtime)" in out
        assert "normalised hypervolume" in out

    def test_run_output_includes_frontier(self, capsys, tmp_path):
        output = tmp_path / "run.json"
        assert main(["dse", "run", "--apps", "QFT,BV", "--qubits", "8",
                     "--topologies", "L3", "--capacities", "6,8",
                     "--gates", "AM1,FM", "--strategy", "parego",
                     "--seed", "2", "--batch-size", "2",
                     "--output", str(output)]) == 0
        payload = json.loads(output.read_text())
        assert payload["strategy"]["objectives"] == ["fidelity", "runtime"]
        assert payload["frontier"]
        assert payload["trace"][0]["hypervolume"] >= 0.0

    def test_run_rejects_objectives_for_scalar_strategy(self, capsys):
        with pytest.raises(SystemExit, match="only applies"):
            main(["dse", "run", "--apps", "QFT", "--qubits", "8",
                  "--topologies", "L3", "--capacities", "6",
                  "--strategy", "grid", "--objectives", "fidelity,runtime"])

    def test_pareto_objectives_and_hypervolume(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        with ExperimentStore(store_dir) as store:
            DSERunner(_space(), store=store).evaluate(
                list(_space().points()))
        assert main(["dse", "pareto", "--store", str(store_dir),
                     "--objectives", "fidelity,runtime,shuttles_per_2q",
                     "--hypervolume"]) == 0
        out = capsys.readouterr().out
        assert "objectives fidelity,runtime,shuttles_per_2q" in out
        assert "normalised hypervolume:" in out

    def test_pareto_rejects_unknown_objective(self, tmp_path):
        store_dir = tmp_path / "store"
        with ExperimentStore(store_dir) as store:
            DSERunner(_space(), store=store).evaluate(
                [next(_space().points())])
        with pytest.raises(SystemExit, match="unknown objective"):
            main(["dse", "pareto", "--store", str(store_dir),
                  "--objectives", "fidelity,latency"])

    def test_pareto_csv_is_full_cloud_with_dominated_column(
            self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        with ExperimentStore(store_dir) as store:
            DSERunner(_space(), store=store).evaluate(
                list(_space().points()))
        output = tmp_path / "cloud.csv"
        assert main(["dse", "pareto", "--store", str(store_dir),
                     "--output", str(output)]) == 0
        assert "Wrote CSV" in capsys.readouterr().out
        lines = output.read_text().splitlines()
        header = lines[0].split(",")
        assert header[0] == "application"
        assert "dominated" in header
        assert "objective_fidelity" in header
        assert "objective_runtime" in header
        # Every stored point appears, not only the frontier.
        assert len(lines) == 1 + _space().size
        dominated = [line.split(",")[header.index("dominated")]
                     for line in lines[1:]]
        assert "True" in dominated and "False" in dominated

    def test_dispatch_rejects_metric_for_moo_strategy(self, tmp_path):
        with pytest.raises(SystemExit, match="does not apply"):
            main(["dse", "dispatch", "--apps", "QFT", "--qubits", "8",
                  "--topologies", "L3", "--capacities", "6,8",
                  "--strategy", "ehvi", "--metric", "runtime",
                  "--store", str(tmp_path / "store"), "--print-only"])

    @pytest.mark.parametrize("strategy", ["grid", "bayes"])
    def test_dispatch_rejects_objectives_for_scalar_strategy(
            self, strategy, tmp_path):
        # Symmetric with `dse run`: --objectives on a scalar dispatch
        # must error, not silently run a single-objective search.
        with pytest.raises(SystemExit, match="only applies"):
            main(["dse", "dispatch", "--apps", "QFT", "--qubits", "8",
                  "--topologies", "L3", "--capacities", "6,8",
                  "--strategy", strategy,
                  "--objectives", "fidelity,runtime",
                  "--store", str(tmp_path / "store"), "--print-only"])

    def test_dispatch_print_only_moo(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(["dse", "dispatch", "--apps", "QFT", "--qubits", "8",
                     "--topologies", "L3", "--capacities", "6,8",
                     "--gates", "AM1,FM", "--strategy", "ehvi",
                     "--objectives", "runtime,fidelity",
                     "--store", str(store), "--workers", "2",
                     "--print-only"]) == 0
        out = capsys.readouterr().out
        assert "repro dse propose --store" in out
        from repro.dse import read_manifest
        manifest = read_manifest(store)
        assert manifest["mode"] == "adaptive"
        assert manifest["strategy"]["name"] == "ehvi"
        assert manifest["strategy"]["objectives"] == ["runtime", "fidelity"]
        # The resolved default budget (half the grid, floored at two
        # batches) is recorded for `dse status --eta`.
        assert manifest["strategy"]["max_evals"] == 4

"""Tests for the observability layer (repro.obs) and its integrations.

Covers the ISSUE's hard guarantees: the disabled tracer is a shared no-op
(instrumented hot paths stay free when tracing is off), span traces
round-trip through the Chrome trace-event / JSONL / manifest exports,
metric deltas merge deterministically for any ``--jobs`` value, and a
``--trace``'d ``dse run`` leaves the canonical store export byte-identical
to the committed golden file.  Also here: the fake-clock tests for the
lease-clock fix (one injectable time source for lease stamps *and* age
checks) and the dispatched fleet's worker-telemetry files.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.dse import DesignSpace, DSERunner, ExperimentStore
from repro.dse.dispatch import (
    LeaseClock,
    LeaseDir,
    ShardLedger,
    WorkerTelemetry,
    read_telemetry,
    telemetry_summary,
)
from repro.dse.store import StoreCorruptionWarning
from repro.obs import (
    TRACE_SCHEMA_VERSION,
    MetricsRegistry,
    chrome_trace,
    config_fingerprint,
    current_tracer,
    disable_tracing,
    enable_tracing,
    registry,
    reset_registry,
    span,
    spans_jsonl,
    validate_chrome_trace,
    write_trace,
)
from repro.toolflow import ProgramCache, SweepTask
from repro.toolflow.parallel import execute_task, run_tasks

#: The golden space as ``dse run`` flags -- must match
#: ``tests/data/regen_store_export.py`` (8 points, QFT+BV at 8 qubits).
GOLDEN_RUN_FLAGS = [
    "--apps", "QFT,BV", "--qubits", "8", "--topologies", "L3",
    "--capacities", "6,8", "--gates", "AM1,FM", "--reorders", "GS",
]

GOLDEN_EXPORT = Path(__file__).parent / "data" / "golden_store_export.json"


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Each test starts with tracing off and a fresh process-wide registry."""

    disable_tracing()
    reset_registry()
    yield
    disable_tracing()
    reset_registry()


# --------------------------------------------------------------------------- #
class TestDisabledTracing:
    def test_span_is_one_shared_noop_object(self):
        assert current_tracer() is None
        first = span("compile", circuit="qft8")
        second = span("sim.simulate")
        # The disabled fast path allocates nothing: every call site gets the
        # same do-nothing singleton back.
        assert first is second
        with first as entered:
            assert entered is first
        assert first.set(gates=3) is first

    def test_disabled_blocks_record_nothing(self):
        with span("compile"):
            with span("compile.route"):
                pass
        tracer = enable_tracing()
        assert tracer.spans == []
        disable_tracing()

    def test_enable_disable_lifecycle(self):
        tracer = enable_tracing()
        assert current_tracer() is tracer
        assert disable_tracing() is tracer
        assert current_tracer() is None
        assert disable_tracing() is None  # idempotent when already off


# --------------------------------------------------------------------------- #
class TestSpanRoundTrip:
    def _traced(self):
        """A small two-level trace with an annotated inner span."""

        tracer = enable_tracing()
        with span("compile", circuit="qft8") as outer:
            with span("compile.route", policy="greedy") as inner:
                inner.set(shuttles=7)
        disable_tracing()
        return tracer, outer, inner

    def test_nesting_follows_the_call_stack(self):
        tracer, outer, inner = self._traced()
        # Spans record on exit, so the inner span lands first.
        assert [item.name for item in tracer.spans] == ["compile.route",
                                                        "compile"]
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.attrs == {"policy": "greedy", "shuttles": 7}
        assert 0.0 <= inner.duration_s <= outer.duration_s

    def test_escaping_exception_is_recorded(self):
        tracer = enable_tracing()
        with pytest.raises(ValueError):
            with span("sim.simulate"):
                raise ValueError("boom")
        disable_tracing()
        assert tracer.spans[0].attrs["error"] == "ValueError: boom"

    def test_chrome_trace_validates_and_survives_json(self):
        tracer, outer, inner = self._traced()
        payload = chrome_trace(tracer)
        assert validate_chrome_trace(payload) == len(tracer.spans)
        # The exported file must still validate after a JSON round-trip --
        # what the CI obs-smoke job checks on the written artefact.
        reparsed = json.loads(json.dumps(payload, default=str))
        assert validate_chrome_trace(reparsed) == len(tracer.spans)
        by_name = {event["name"]: event for event in payload["traceEvents"]}
        assert by_name["compile"]["cat"] == "compile"
        assert by_name["compile.route"]["cat"] == "compile"
        assert by_name["compile.route"]["args"]["parent_id"] == outer.span_id
        assert by_name["compile.route"]["args"]["shuttles"] == 7
        assert payload["otherData"]["trace_schema"] == TRACE_SCHEMA_VERSION

    def test_spans_jsonl_round_trips_the_span_schema(self):
        tracer, _, _ = self._traced()
        lines = spans_jsonl(tracer).splitlines()
        assert [json.loads(line) for line in lines] == \
            [item.to_dict(tracer.origin_s) for item in tracer.spans]

    def test_validate_rejects_malformed_payloads(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"displayTimeUnit": "ms"})
        event = {"name": "x", "cat": "x", "ph": "X", "ts": 0.0,
                 "pid": 1, "tid": 1}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace({"traceEvents": [dict(event, dur=-1.0)]})
        with pytest.raises(ValueError, match="pid"):
            validate_chrome_trace({"traceEvents": [
                dict(event, dur=1.0, pid="not-an-int")]})

    def test_write_trace_bundle(self, tmp_path):
        tracer, _, _ = self._traced()
        config = {"command": "dse run", "qubits": 8}
        paths = write_trace(tmp_path / "out.json", tracer, config=config)
        assert paths["trace"] == tmp_path / "out.json"
        assert paths["spans"] == tmp_path / "out.spans.jsonl"
        assert paths["manifest"] == tmp_path / "out.manifest.json"
        assert validate_chrome_trace(
            json.loads(paths["trace"].read_text())) == len(tracer.spans)
        manifest = json.loads(paths["manifest"].read_text())
        assert manifest["trace_schema"] == TRACE_SCHEMA_VERSION
        assert manifest["num_spans"] == len(tracer.spans)
        assert manifest["config_fingerprint"] == config_fingerprint(config)
        assert manifest["phase_timings"]["compile"]["count"] == 1
        assert manifest["phase_timings"]["compile.route"]["count"] == 1

    def test_config_fingerprint_is_canonical(self):
        assert config_fingerprint({"a": 1, "b": 2}) == \
            config_fingerprint({"b": 2, "a": 1})
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_pipeline_emits_the_documented_spans(self, qft8, small_config):
        tracer = enable_tracing()
        try:
            execute_task(SweepTask(qft8, small_config, gates=("AM1", "FM")),
                         ProgramCache())
        finally:
            disable_tracing()
        names = {item.name for item in tracer.spans}
        assert {"sweep.task", "compile", "compile.lower", "compile.map",
                "compile.route", "compile.validate", "sim.batch.plan",
                "sim.batch.variants"} <= names
        # Compile stages parent under the compile span, which parents under
        # the sweep task -- the nesting a Perfetto view shows.
        by_id = {item.span_id: item for item in tracer.spans}
        compile_span = next(item for item in tracer.spans
                            if item.name == "compile")
        route = next(item for item in tracer.spans
                     if item.name == "compile.route")
        assert route.parent_id == compile_span.span_id
        assert by_id[compile_span.parent_id].name == "sweep.task"


# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits").inc()
        reg.counter("cache.hits").inc(4)
        reg.gauge("queue.depth").set(3.0)
        lat = reg.histogram("dse.propose.latency_s")
        for value in (0.5, 0.1, 0.9):
            lat.observe(value)
        assert reg.counters() == {"cache.hits": 5}
        assert lat.count == 3 and lat.min == 0.1 and lat.max == 0.9
        assert lat.mean == pytest.approx(0.5)
        snap = reg.snapshot()
        assert snap["gauges"] == {"queue.depth": 3.0}
        assert snap["histograms"]["dse.propose.latency_s"]["count"] == 3

    def test_delta_reports_only_movement(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(7)
        reg.histogram("h").observe(1.0)
        before = reg.snapshot()
        reg.counter("a").inc(3)
        reg.counter("b")  # registered but never moved
        delta = reg.delta(before)
        assert delta["counters"] == {"a": 3}
        assert delta["histograms"] == {}  # no new observations

    def test_worker_delta_merges_exactly(self):
        """The pool protocol: snapshot -> work -> delta -> parent merge."""

        parent = MetricsRegistry()
        parent.counter("cache.hits").inc(2)
        worker = MetricsRegistry()
        worker.counter("cache.hits").inc(7)  # pre-task worker state
        before = worker.snapshot()
        worker.counter("cache.hits").inc(3)
        worker.histogram("wall_s").observe(0.25)
        worker.gauge("depth").set(4.0)
        parent.merge(worker.delta(before))
        assert parent.counters() == {"cache.hits": 5}
        assert parent.gauge("depth").value == 4.0
        assert parent.histogram("wall_s").count == 1

    def test_histogram_min_max_fold_across_workers(self):
        parent = MetricsRegistry()
        for low, high in ((0.2, 0.4), (0.1, 0.3)):
            worker = MetricsRegistry()
            before = worker.snapshot()
            worker.histogram("wall_s").observe(low)
            worker.histogram("wall_s").observe(high)
            parent.merge(worker.delta(before))
        folded = parent.histogram("wall_s")
        assert folded.count == 4
        assert folded.min == 0.1 and folded.max == 0.4
        assert folded.total == pytest.approx(1.0)

    def test_counter_dict_drives_prefixed_counters(self):
        reg = MetricsRegistry()
        view = reg.dict_view("cache.batch.")
        view["plans"] = view.get("plans", 0) + 1
        view["variants"] = 4
        assert reg.counters() == {"cache.batch.plans": 1,
                                  "cache.batch.variants": 4}
        assert dict(view) == {"plans": 1, "variants": 4}
        assert len(view) == 2
        with pytest.raises(KeyError):
            view["missing"]
        del view["variants"]
        assert reg.counters() == {"cache.batch.plans": 1}

    def test_reset_registry_replaces_the_global(self):
        registry().counter("x").inc()
        fresh = reset_registry()
        assert fresh is registry()
        assert registry().counters() == {}

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_sweep_counters_identical_for_any_jobs(self, small_suite,
                                                   small_config, jobs):
        """Delta-merge determinism: jobs=N reports the same counters as
        jobs=1 (integer deltas merged in task order cannot drift)."""

        tasks = [SweepTask(circuit, small_config, gates=("AM1", "FM"))
                 for circuit in small_suite.values()]
        serial = ProgramCache()
        run_tasks(tasks, jobs=1, cache=serial)
        pooled = ProgramCache()
        run_tasks(tasks, jobs=jobs, cache=pooled)

        def moved(cache):
            # Zero-valued series may be registered on one path and not the
            # other (merges only fold nonzero deltas); the reported counts
            # are what must agree.
            return {name: value
                    for name, value in cache.metrics.counters().items()
                    if value}

        assert moved(pooled) == moved(serial)
        assert serial.metrics.counters()["cache.misses"] == len(tasks)
        assert serial.stats() == {**pooled.stats(), "entries": len(tasks)}


# --------------------------------------------------------------------------- #
class _FakeTime:
    """A controllable wall clock for LeaseClock(now_fn=...)."""

    def __init__(self, start: float = 1_000_000.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t


class TestLeaseClock:
    def test_touch_and_age_use_one_time_source(self, tmp_path):
        fake = _FakeTime()
        clock = LeaseClock(now_fn=fake)
        target = tmp_path / "lease"
        target.write_text("x")  # real-clock mtime, far from fake.t
        clock.touch(target)
        assert clock.age(target) == pytest.approx(0.0)
        fake.t += 5.0
        assert clock.age(target) == pytest.approx(5.0)

    def test_age_never_negative(self, tmp_path):
        fake = _FakeTime()
        clock = LeaseClock(now_fn=fake)
        target = tmp_path / "lease"
        target.write_text("x")
        clock.touch(target)
        fake.t -= 10.0  # clock skew: the stamp is "in the future"
        assert clock.age(target) == 0.0

    def test_fresh_lease_holds_under_fake_clock(self, tmp_path):
        fake = _FakeTime()
        leases = LeaseDir(tmp_path / "leases", ttl_s=10.0,
                          clock=LeaseClock(now_fn=fake))
        assert leases.claim("shard-1", "worker-a") is True
        fake.t += 9.9  # one tick from expiry: still held
        assert leases.claim("shard-1", "worker-b") is False
        status, owner, age = leases.status_of("shard-1")
        assert (status, owner) == ("active", "worker-a")
        assert age == pytest.approx(9.9)

    def test_renewal_resets_the_fake_clock_expiry(self, tmp_path):
        fake = _FakeTime()
        leases = LeaseDir(tmp_path / "leases", ttl_s=10.0,
                          clock=LeaseClock(now_fn=fake))
        assert leases.claim("shard-1", "worker-a")
        fake.t += 9.0
        assert leases.renew("shard-1", "worker-a") is True
        fake.t += 9.0  # 18s after claim, 9s after renewal: still fresh
        status, _, age = leases.status_of("shard-1")
        assert status == "active"
        assert age == pytest.approx(9.0)

    def test_expiry_and_takeover_follow_the_fake_clock(self, tmp_path):
        fake = _FakeTime()
        leases = LeaseDir(tmp_path / "leases", ttl_s=10.0,
                          clock=LeaseClock(now_fn=fake))
        assert leases.claim("shard-1", "dead-worker")
        fake.t += 10.5
        assert leases.status_of("shard-1")[0] == "expired"
        assert leases.claim("shard-1", "survivor") is True
        assert leases.owner_of("shard-1") == "survivor"
        # The takeover restamped the lease at the fake "now": fresh again.
        assert leases.status_of("shard-1")[0] == "active"
        assert leases.renew("shard-1", "dead-worker") is False

    def test_ledgers_thread_the_clock_through(self, tmp_path):
        fake = _FakeTime()
        clock = LeaseClock(now_fn=fake)
        ledger = ShardLedger(tmp_path / "leases", 2, ttl_s=5.0, clock=clock)
        assert ledger.clock is clock
        assert ledger.claim(1, "worker-a")
        fake.t += 6.0
        assert ledger.state(1).status == "expired"
        store_ledger = ShardLedger.for_store(tmp_path / "store", 2,
                                             clock=clock)
        assert store_ledger.clock is clock

    def test_default_clock_is_wall_time(self, tmp_path):
        leases = LeaseDir(tmp_path / "leases", ttl_s=3600.0)
        assert leases.claim("shard-1", "worker-a")
        status, _, age = leases.status_of("shard-1")
        assert status == "active"
        assert 0.0 <= age < 60.0


# --------------------------------------------------------------------------- #
class TestWorkerTelemetry:
    def _emit_lifecycle(self, store_dir, owner, fake, *, exit_marker=True):
        telemetry = WorkerTelemetry(store_dir, owner,
                                    clock=LeaseClock(now_fn=fake))
        telemetry.emit("worker_start", mode="shards", pid=123)
        fake.t += 1.0
        telemetry.emit("claim", work="shard-1of2")
        fake.t += 1.0
        telemetry.emit("renew", work="shard-1of2")
        fake.t += 1.0
        telemetry.emit("done", work="shard-1of2", points=4, replayed=1,
                       wall_s=2.5)
        if exit_marker:
            fake.t += 1.0
            telemetry.emit("worker_exit", completed=1, lost=0)
        return telemetry

    def test_events_land_in_the_telemetry_subdir(self, tmp_path):
        fake = _FakeTime()
        telemetry = self._emit_lifecycle(tmp_path, "host:1234", fake)
        assert telemetry.path.parent == tmp_path / "telemetry"
        # Owner names are sanitised into file names, and telemetry must not
        # pollute the store's own *.jsonl row glob (it lives one level down).
        assert ":" not in telemetry.path.name
        assert list(tmp_path.glob("*.jsonl")) == []

    def test_read_telemetry_orders_and_tolerates_garbage(self, tmp_path):
        fake = _FakeTime()
        telemetry = self._emit_lifecycle(tmp_path, "worker-a", fake)
        with telemetry.path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn": ')  # a live writer's in-flight append
        events = read_telemetry(tmp_path)
        assert [event["event"] for event in events] == \
            ["worker_start", "claim", "renew", "done", "worker_exit"]
        assert [event["t"] for event in events] == \
            sorted(event["t"] for event in events)

    def test_summary_folds_one_row_per_worker(self, tmp_path):
        fake = _FakeTime()
        self._emit_lifecycle(tmp_path, "worker-a", fake)
        self._emit_lifecycle(tmp_path, "worker-b", fake, exit_marker=False)
        fake.t += 10.0
        workers = telemetry_summary(tmp_path, now=fake.t)
        assert set(workers) == {"worker-a", "worker-b"}
        row = workers["worker-a"]
        assert (row["claims"], row["renewals"], row["done"],
                row["lost"]) == (1, 1, 1, 0)
        assert (row["points"], row["replayed"]) == (4, 1)
        assert row["wall_s"] == pytest.approx(2.5)
        assert row["alive"] is False
        assert row["last_event"] == "worker_exit"
        # worker-b never wrote its exit marker: it reads as alive with a
        # growing last-seen age (a crashed worker's signature).
        assert workers["worker-b"]["alive"] is True
        assert workers["worker-b"]["last_seen_age_s"] == pytest.approx(10.0)

    def test_summary_of_an_undispatched_store_is_empty(self, tmp_path):
        assert telemetry_summary(tmp_path) == {}

    def test_status_workers_cli_prints_the_fleet(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        with ExperimentStore(store_dir) as store:
            DSERunner(DesignSpace(apps=("BV",), qubits=(8,),
                                  topologies=("L3",), capacities=(6,),
                                  gates=("FM",)), store=store).evaluate_space()
        fake = _FakeTime()
        self._emit_lifecycle(store_dir, "worker-a", fake)
        assert main(["dse", "status", "--store", str(store_dir),
                     "--workers"]) == 0
        out = capsys.readouterr().out
        assert "Workers (1):" in out
        assert "worker-a" in out
        assert "1 done / 0 lost of 1 claims" in out
        assert "4 evaluated + 1 replayed" in out


# --------------------------------------------------------------------------- #
class TestStoreSkipAccounting:
    def _store_with_corruption(self, tmp_path):
        store_dir = tmp_path / "store"
        with ExperimentStore(store_dir) as store:
            DSERunner(DesignSpace(apps=("BV",), qubits=(8,),
                                  topologies=("L3",), capacities=(6,),
                                  gates=("FM",)), store=store).evaluate_space()
        # Two corrupt lines: the warning for a file's *last* skipped line is
        # deferred (it may be a live writer's tail), so only runs with a
        # line after the corruption warn immediately.
        with (store_dir / "results.jsonl").open("a") as handle:
            handle.write("this is not json\n")
            handle.write("neither is this\n")
        return store_dir

    def test_skips_count_per_file_and_in_the_registry(self, tmp_path):
        store_dir = self._store_with_corruption(tmp_path)
        reset_registry()
        with pytest.warns(StoreCorruptionWarning):
            store = ExperimentStore(store_dir)
        assert store.skipped_lines == 2
        assert store.skip_counts() == {"results.jsonl": 2}
        # Mirrored into the process-wide registry, so the --trace manifest
        # surfaces corruption without catching warnings.
        assert registry().counters()["store.lines_skipped"] == 2
        store.close()

    def test_status_cli_names_the_corrupt_file(self, tmp_path, capsys):
        store_dir = self._store_with_corruption(tmp_path)
        with pytest.warns(StoreCorruptionWarning):
            assert main(["dse", "status", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "skipped 2 truncated/corrupt lines" in out
        assert "results.jsonl" in out.split("skipped 2", 1)[1]


# --------------------------------------------------------------------------- #
class TestTracedRunByteIdentity:
    def test_traced_dse_run_export_matches_golden(self, tmp_path):
        """--trace must not perturb experiment data: the canonical export of
        a traced run is byte-identical to the committed golden export."""

        store_dir = tmp_path / "store"
        trace_path = tmp_path / "trace.json"
        assert main(["dse", "run", *GOLDEN_RUN_FLAGS,
                     "--store", str(store_dir),
                     "--trace", str(trace_path)]) == 0
        assert current_tracer() is None  # the CLI uninstalled its tracer

        payload = json.loads(trace_path.read_text())
        events = validate_chrome_trace(payload)
        assert events > 0
        names = {event["name"] for event in payload["traceEvents"]}
        assert {"dse.evaluate", "compile", "sim.batch.variants"} <= names

        manifest = json.loads(
            (tmp_path / "trace.manifest.json").read_text())
        assert manifest["num_spans"] == events
        assert manifest["metrics"]["counters"]["dse.points.evaluated"] == 8
        assert (tmp_path / "trace.spans.jsonl").exists()

        output = tmp_path / "export.json"
        assert main(["dse", "export", "--store", str(store_dir),
                     "--output", str(output)]) == 0
        assert output.read_bytes() == GOLDEN_EXPORT.read_bytes()

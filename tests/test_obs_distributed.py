"""Tests for fleet-wide distributed tracing (repro.obs.distributed).

Covers the ISSUE's guarantees: the trace context propagates into pool
children (``sweep.task`` spans no longer vanish for ``--jobs 2``) and into
dispatched worker subprocesses via the environment; worker shards flush
crash-safely and merge deterministically -- the same span set produces a
byte-identical Chrome trace regardless of how it was split across shard
files; torn or corrupt shard lines are skipped with the store's
``StoreCorruptionWarning`` discipline while the merged trace still
validates and profiles; and the profiler resolves cross-process
``parent_ref`` links into one fleet critical path.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

import pytest

from repro.cli import main
from repro.dse import DesignSpace, Dispatcher
from repro.dse.dispatch import run_worker, telemetry_summary
from repro.dse.store import StoreCorruptionWarning
from repro.obs import (
    SHARD_SCHEMA_VERSION,
    TRACE_DIR,
    TraceContext,
    TraceShardWriter,
    adopt_shards,
    build_profile,
    chrome_trace,
    current_span_name,
    current_span_ref,
    disable_tracing,
    enable_tracing,
    read_trace_shards,
    render_top,
    reset_registry,
    span,
    validate_chrome_trace,
    write_merged_trace,
)
from repro.obs.distributed import (
    ENV_TRACE_ID,
    ENV_TRACE_PARENT,
    drain_records,
    export_records,
)
from repro.toolflow import ArchitectureConfig, SweepTask
from repro.toolflow.parallel import run_tasks


@pytest.fixture(autouse=True)
def _clean_obs_state():
    disable_tracing()
    reset_registry()
    yield
    disable_tracing()
    reset_registry()


def _make_spans(tracer):
    with span("dse.shard", shard="s0"):
        with span("sweep.task"):
            pass
    return tracer


# --------------------------------------------------------------------------- #
# Trace context propagation
# --------------------------------------------------------------------------- #
class TestTraceContext:
    def test_env_round_trip(self):
        tracer = enable_tracing()
        with span("dse.dispatch"):
            ctx = TraceContext.from_tracer(tracer,
                                           parent_ref=current_span_ref())
            env = {}
            ctx.stamp(env)
            assert env[ENV_TRACE_ID] == tracer.trace_id
            assert env[ENV_TRACE_PARENT] == f"{tracer.pid}:1"
        back = TraceContext.from_env(env)
        assert back == ctx

    def test_from_env_absent(self):
        assert TraceContext.from_env({}) is None
        assert TraceContext.from_env({ENV_TRACE_ID: ""}) is None

    def test_stamp_clears_stale_parent(self):
        env = {ENV_TRACE_PARENT: "9:9"}
        TraceContext(trace_id="t").stamp(env)
        assert ENV_TRACE_PARENT not in env

    def test_arm_is_idempotent(self):
        ctx = TraceContext(trace_id="root-x", parent_ref="7:3")
        tracer = ctx.arm()
        assert tracer.trace_id == "root-x"
        assert tracer.parent_ref == "7:3"
        assert ctx.arm() is tracer

    def test_fresh_tracer_restarts_parent_chain(self):
        # A forked pool child inherits the parent's ContextVar; a fresh
        # tracer must not attribute new spans to another process's span.
        enable_tracing()
        with span("outer"):
            tracer = enable_tracing()
            with span("inner"):
                pass
        assert tracer.spans[0].parent_id is None

    def test_current_span_name_tracks_open_span(self):
        assert current_span_name() is None
        enable_tracing()
        assert current_span_name() is None
        with span("dse.shard"):
            with span("sweep.task"):
                assert current_span_name() == "sweep.task"
            assert current_span_name() == "dse.shard"
        assert current_span_name() is None


# --------------------------------------------------------------------------- #
# Pool children (the --jobs 2 regression)
# --------------------------------------------------------------------------- #
class TestPoolChildSpans:
    def test_jobs2_sweep_ships_task_spans_home(self, qft8):
        config = ArchitectureConfig(topology="L3", trap_capacity=6)
        tasks = [SweepTask(qft8, config),
                 SweepTask(qft8, config.with_updates(trap_capacity=8))]
        tracer = enable_tracing()
        with span("sweep", points=len(tasks)):
            run_tasks(tasks, jobs=2)
        disable_tracing()
        assert [s.name for s in tracer.spans] == ["sweep"]
        names = {r["name"] for r in tracer.foreign}
        assert "sweep.task" in names  # regression: these used to vanish
        assert {r["trace_id"] for r in tracer.foreign} == {tracer.trace_id}
        roots = [r for r in tracer.foreign if r.get("parent_id") is None]
        assert roots and all(r["parent_ref"] == f"{tracer.pid}:1"
                             for r in roots)
        # The fleet critical path descends from the parent's sweep span
        # into a pool child's task.
        profile = build_profile(tracer.records())
        path_names = [step["name"] for step in profile["critical_path"]]
        assert path_names[0] == "sweep"
        assert "sweep.task" in path_names
        assert len({step["pid"] for step in profile["critical_path"]}) == 2

    def test_untraced_jobs2_sweep_ships_nothing(self, qft8):
        config = ArchitectureConfig(topology="L3", trap_capacity=6)
        tasks = [SweepTask(qft8, config),
                 SweepTask(qft8, config.with_updates(trap_capacity=8))]
        run_tasks(tasks, jobs=2)  # no tracer armed: must not blow up
        assert disable_tracing() is None


# --------------------------------------------------------------------------- #
# Shard write / read round trip
# --------------------------------------------------------------------------- #
class TestTraceShards:
    def test_export_records_schema(self):
        tracer = enable_tracing(trace_id="root-1", parent_ref="5:2")
        _make_spans(tracer)
        records = export_records(tracer, owner="w0")
        assert len(records) == 2
        for record in records:
            assert record["schema_version"] == SHARD_SCHEMA_VERSION
            assert record["trace_id"] == "root-1"
            assert record["owner"] == "w0"
            assert "epoch_start_s" in record and "start_s" not in record
        roots = [r for r in records if r["parent_id"] is None]
        assert [r["parent_ref"] for r in roots] == ["5:2"]
        kids = [r for r in records if r["parent_id"] is not None]
        assert all("parent_ref" not in r for r in kids)

    def test_drain_records_clears_and_keeps_ids_unique(self):
        tracer = enable_tracing()
        _make_spans(tracer)
        first = drain_records(tracer)
        assert tracer.spans == [] and tracer.foreign == []
        _make_spans(tracer)
        second = drain_records(tracer)
        ids = [r["span_id"] for r in first + second]
        assert len(ids) == len(set(ids))

    def test_writer_flush_and_read_round_trip(self, tmp_path):
        tracer = enable_tracing()
        _make_spans(tracer)
        writer = TraceShardWriter(tmp_path, "worker/0")
        path = writer.flush(tracer)
        assert path == tmp_path / TRACE_DIR / "worker_0.jsonl"
        records, skips = read_trace_shards(tmp_path)
        assert skips == {}
        assert [r["name"] for r in records] == ["dse.shard", "sweep.task"]

    def test_flush_none_and_empty_are_noops(self, tmp_path):
        writer = TraceShardWriter(tmp_path, "w0")
        assert writer.flush(None) is None
        assert writer.flush(enable_tracing()) is None
        assert not (tmp_path / TRACE_DIR).exists()

    def test_read_missing_directory(self, tmp_path):
        assert read_trace_shards(tmp_path) == ([], {})


# --------------------------------------------------------------------------- #
# Deterministic merging
# --------------------------------------------------------------------------- #
def _shard_record(name, span_id, pid, start, *, parent=None, ref=None,
                  owner=None):
    record = {"name": name, "span_id": span_id, "parent_id": parent,
              "pid": pid, "tid": 1, "epoch_start_s": start,
              "duration_s": 0.5, "attrs": {},
              "trace_id": "root-t", "schema_version": SHARD_SCHEMA_VERSION}
    if ref:
        record["parent_ref"] = ref
    if owner:
        record["owner"] = owner
    return record


def _write_shard(store, name, records):
    directory = Path(store) / TRACE_DIR
    directory.mkdir(parents=True, exist_ok=True)
    text = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    (directory / name).write_text(text)


FLEET_RECORDS = [
    _shard_record("dse.shard", 1, 100, 10.0, owner="w0"),
    _shard_record("sweep.task", 2, 100, 10.1, parent=1, owner="w0"),
    _shard_record("dse.shard", 1, 200, 10.2, owner="w1"),
    _shard_record("sweep.task", 2, 200, 10.3, parent=1, owner="w1"),
]


class TestMergeDeterminism:
    def test_merge_is_independent_of_shard_split(self, tmp_path):
        split_a = tmp_path / "a"
        _write_shard(split_a, "w0.jsonl", FLEET_RECORDS[:2])
        _write_shard(split_a, "w1.jsonl", FLEET_RECORDS[2:])
        split_b = tmp_path / "b"
        _write_shard(split_b, "odd.jsonl", FLEET_RECORDS[::2][::-1])
        _write_shard(split_b, "even.jsonl", FLEET_RECORDS[1::2])
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        write_merged_trace(split_a, out_a)
        write_merged_trace(split_b, out_b)
        assert out_a.read_bytes() == out_b.read_bytes()
        spans_a = out_a.with_name("a.spans.jsonl").read_bytes()
        spans_b = out_b.with_name("b.spans.jsonl").read_bytes()
        assert spans_a == spans_b

    def test_merged_trace_validates_with_metadata(self, tmp_path):
        _write_shard(tmp_path, "w0.jsonl", FLEET_RECORDS)
        out = tmp_path / "out.json"
        _, info = write_merged_trace(tmp_path, out)
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == 4 + 2 + 2
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["pid"], e["args"]["name"]) for e in metadata}
        assert ("process_name", 100, "w0") in names
        assert ("process_name", 200, "w1") in names
        assert payload["otherData"]["trace_id"] == "root-t"
        assert info["spans"] == 4 and len(info["pids"]) == 2

    def test_merge_empty_store_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no trace shards"):
            write_merged_trace(tmp_path, tmp_path / "out.json")

    def test_adopt_shards_drops_own_pid(self, tmp_path):
        own = enable_tracing()
        mixed = FLEET_RECORDS + [
            _shard_record("dse.dispatch", 9, os.getpid(), 9.9, owner="me")]
        _write_shard(tmp_path, "w0.jsonl", mixed)
        info = adopt_shards(own, tmp_path)
        assert info["spans"] == 4  # the own-pid record was dropped
        assert {r["pid"] for r in own.foreign} == {100, 200}
        assert [s.name for s in own.spans] == ["trace.merge"]


# --------------------------------------------------------------------------- #
# Crash path: torn and corrupt shard lines
# --------------------------------------------------------------------------- #
class TestShardCorruption:
    def test_torn_tail_skipped_silently(self, tmp_path):
        _write_shard(tmp_path, "w0.jsonl", FLEET_RECORDS[:2])
        shard = tmp_path / TRACE_DIR / "w0.jsonl"
        shard.write_text(shard.read_text()
                         + json.dumps(FLEET_RECORDS[2])[:25])
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a torn tail must not warn
            records, skips = read_trace_shards(tmp_path)
        assert len(records) == 2
        assert skips == {"w0.jsonl": 1}

    def test_mid_file_corruption_warns(self, tmp_path):
        shard = tmp_path / TRACE_DIR / "w0.jsonl"
        shard.parent.mkdir(parents=True)
        lines = [json.dumps(FLEET_RECORDS[0], sort_keys=True),
                 "{not json",
                 json.dumps({"name": "x"}),  # missing required keys
                 json.dumps(FLEET_RECORDS[1], sort_keys=True)]
        shard.write_text("\n".join(lines) + "\n")
        with pytest.warns(StoreCorruptionWarning) as caught:
            records, skips = read_trace_shards(tmp_path)
        assert len(records) == 2
        assert skips == {"w0.jsonl": 2}
        assert any("w0.jsonl:2" in str(w.message) for w in caught)

    def test_future_schema_version_skipped(self, tmp_path):
        future = dict(FLEET_RECORDS[0],
                      schema_version=SHARD_SCHEMA_VERSION + 1)
        _write_shard(tmp_path, "w0.jsonl", [FLEET_RECORDS[1], future])
        with pytest.warns(StoreCorruptionWarning, match="newer than"):
            records, skips = read_trace_shards(tmp_path)
        assert len(records) == 1
        assert skips == {"w0.jsonl": 1}

    def test_torn_store_still_merges_and_profiles(self, tmp_path):
        _write_shard(tmp_path, "w0.jsonl", FLEET_RECORDS)
        shard = tmp_path / TRACE_DIR / "w0.jsonl"
        shard.write_text(shard.read_text() + '{"name": "torn')
        out = tmp_path / "out.json"
        paths, info = write_merged_trace(tmp_path, out)
        assert sum(info["skipped"].values()) == 1
        validate_chrome_trace(json.loads(out.read_text()))
        spans = [json.loads(line) for line in
                 paths["spans"].read_text().splitlines()]
        profile = build_profile(spans)
        assert profile["num_spans"] == 4
        assert [s["name"] for s in profile["critical_path"]] == \
            ["dse.shard", "sweep.task"]


# --------------------------------------------------------------------------- #
# Cross-process profiling
# --------------------------------------------------------------------------- #
class TestFleetProfile:
    def test_parent_ref_links_across_pids(self):
        spans = [
            {"name": "dse.dispatch", "span_id": 1, "parent_id": None,
             "pid": 1, "tid": 1, "start_s": 0.0, "duration_s": 4.0,
             "attrs": {}},
            {"name": "dse.shard", "span_id": 1, "parent_id": None,
             "parent_ref": "1:1", "pid": 2, "tid": 1, "start_s": 0.5,
             "duration_s": 3.0, "attrs": {}},
            {"name": "sweep.task", "span_id": 2, "parent_id": 1,
             "pid": 2, "tid": 1, "start_s": 0.6, "duration_s": 2.0,
             "attrs": {}},
        ]
        profile = build_profile(spans)
        assert profile["wall_s"] == 4.0  # only the dispatch span is a root
        assert [(s["name"], s["pid"]) for s in profile["critical_path"]] == \
            [("dse.dispatch", 1), ("dse.shard", 2), ("sweep.task", 2)]
        tree_paths = {node["path"] for node in profile["tree"]}
        assert "dse.dispatch;dse.shard;sweep.task" in tree_paths

    def test_colliding_span_ids_stay_separate_per_pid(self):
        spans = [
            {"name": "dse.shard", "span_id": 1, "parent_id": None,
             "pid": pid, "tid": 1, "start_s": 0.0, "duration_s": 1.0,
             "attrs": {}}
            for pid in (1, 2)
        ] + [
            {"name": "sweep.task", "span_id": 2, "parent_id": 1,
             "pid": pid, "tid": 1, "start_s": 0.1, "duration_s": 0.5,
             "attrs": {}}
            for pid in (1, 2)
        ]
        profile = build_profile(spans)
        assert profile["names"]["sweep.task"]["count"] == 2
        node = {n["path"]: n for n in profile["tree"]}
        assert node["dse.shard;sweep.task"]["count"] == 2

    def test_bad_parent_ref_treated_as_root(self):
        spans = [{"name": "dse.shard", "span_id": 1, "parent_id": None,
                  "parent_ref": "not-a-ref:x", "pid": 2, "tid": 1,
                  "start_s": 0.0, "duration_s": 1.0, "attrs": {}}]
        profile = build_profile(spans)
        assert profile["wall_s"] == 1.0


# --------------------------------------------------------------------------- #
# End to end: traced dispatch, live phase, CLI merge
# --------------------------------------------------------------------------- #
def _tiny_space():
    return DesignSpace.from_dict({
        "apps": ["QFT"], "qubits": [6], "topologies": ["L3"],
        "capacities": [6, 8], "gates": ["FM"], "reorders": ["GS"],
    })


class TestTracedDispatch:
    def test_worker_joins_env_trace_and_flushes_shard(self, tmp_path,
                                                      monkeypatch):
        dispatcher = Dispatcher(_tiny_space(), tmp_path, workers=1, shards=1)
        dispatcher.prepare()
        monkeypatch.setenv(ENV_TRACE_ID, "root-env")
        monkeypatch.setenv(ENV_TRACE_PARENT, "1:1")
        run_worker(tmp_path, owner="w0")
        disable_tracing()  # run_worker armed this process's tracer
        records, skips = read_trace_shards(tmp_path)
        assert skips == {}
        assert {r["trace_id"] for r in records} == {"root-env"}
        assert {r["owner"] for r in records} == {"w0"}
        roots = [r for r in records if r["parent_id"] is None]
        assert roots and all(r["parent_ref"] == "1:1" for r in roots)
        assert "dse.shard" in {r["name"] for r in records}

    def test_dispatch_merges_fleet_trace(self, tmp_path):
        tracer = enable_tracing()
        summary = Dispatcher(_tiny_space(), tmp_path, workers=2,
                             shards=2).run(timeout_s=300)
        disable_tracing()
        assert summary["complete"]
        info = summary["trace"]
        assert info["spans"] == len(tracer.foreign) > 0
        assert info["trace_ids"] == [tracer.trace_id]
        # The spans arrived from worker subprocesses, not this process.
        assert os.getpid() not in {r["pid"] for r in tracer.foreign}
        payload = chrome_trace(tracer)
        validate_chrome_trace(payload)
        assert any(e["ph"] == "M" for e in payload["traceEvents"])
        profile = build_profile(tracer.records())
        path_names = [s["name"] for s in profile["critical_path"]]
        assert path_names[0] == "dse.dispatch"
        assert "dse.shard" in path_names

    def test_untraced_dispatch_writes_no_shards(self, tmp_path):
        summary = Dispatcher(_tiny_space(), tmp_path, workers=1,
                             shards=1).run(timeout_s=300)
        assert summary["complete"]
        assert "trace" not in summary
        assert not (tmp_path / TRACE_DIR).exists()

    def test_trace_merge_cli(self, tmp_path, capsys):
        _write_shard(tmp_path / "store", "w0.jsonl", FLEET_RECORDS)
        out = tmp_path / "merged.json"
        code = main(["trace", "merge", "--store", str(tmp_path / "store"),
                     "--output", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "4 spans from 2 process(es)" in text
        validate_chrome_trace(json.loads(out.read_text()))

    def test_trace_merge_cli_empty_store(self, tmp_path, capsys):
        code = main(["trace", "merge", "--store", str(tmp_path),
                     "--output", str(tmp_path / "out.json")])
        assert code == 1
        assert "cannot merge" in capsys.readouterr().err


class TestLivePhase:
    def test_phase_in_telemetry_summary(self, tmp_path):
        from repro.dse.dispatch import WorkerTelemetry

        telemetry = WorkerTelemetry(tmp_path, "w0")
        telemetry.emit("worker_start", pid=1)
        telemetry.emit("renew", work="shard-0", phase="dse.shard")
        row = telemetry_summary(tmp_path)["w0"]
        assert row["phase"] == "dse.shard"
        telemetry.emit("done", work="shard-0")
        row = telemetry_summary(tmp_path)["w0"]
        assert row["phase"] is None  # the work unit's span closed with it

    def test_render_top_shows_phase(self):
        snapshot = {
            "store": "s", "progress": {},
            "workers": {"w0": {"alive": True, "last_seen_age_s": 1.0,
                               "done": 1, "lost": 0, "claims": 2,
                               "phase": "dse.shard"}},
            "timeline": None, "stragglers": {}, "ttl_s": 30.0,
        }
        frame = render_top(snapshot)
        assert "in dse.shard" in frame

"""Tests for span-derived profiling (repro.obs.profile), the bench-diff
verdict engine (repro.obs.benchdiff), the v2 bench artefact schema, and
the flush-on-failure trace writer.

The acceptance bar pinned here: profiles are deterministic pure
functions of the span list, per-stage self times telescope exactly to
the traced wall time, and ``repro bench diff`` exits nonzero on an
injected synthetic regression.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import (
    build_profile,
    collapsed_stacks,
    disable_tracing,
    format_profile,
    parse_spans_jsonl,
    reset_registry,
)
from repro.obs.benchdiff import (
    classify_metric,
    compare_bench,
    format_bench_diff,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Each test starts with tracing off and a fresh process-wide registry."""

    disable_tracing()
    reset_registry()
    yield
    disable_tracing()
    reset_registry()


def _span(span_id, name, start, duration, parent=None):
    return {"name": name, "span_id": span_id, "parent_id": parent,
            "pid": 1, "tid": 1, "start_s": start, "duration_s": duration,
            "attrs": {}}


def nested_trace():
    """root(10s) -> compile(6s) -> route(4s); root -> sim(3s)."""

    return [
        _span(1, "root", 0.0, 10.0),
        _span(2, "compile", 0.5, 6.0, parent=1),
        _span(3, "compile.route", 1.0, 4.0, parent=2),
        _span(4, "sim", 7.0, 3.0, parent=1),
    ]


# --------------------------------------------------------------------------- #
class TestBuildProfile:
    def test_self_times_telescope_to_wall(self):
        profile = build_profile(nested_trace())
        assert profile["wall_s"] == pytest.approx(10.0)
        total_self = sum(node["self_s"] for node in profile["tree"])
        assert total_self == pytest.approx(profile["wall_s"], abs=1e-12)
        by_path = {node["path"]: node for node in profile["tree"]}
        assert by_path["root"]["self_s"] == pytest.approx(1.0)
        assert by_path["root;compile"]["self_s"] == pytest.approx(2.0)
        assert by_path["root;compile;compile.route"]["self_s"] == \
            pytest.approx(4.0)
        assert by_path["root;sim"]["self_s"] == pytest.approx(3.0)

    def test_flat_table_and_quantiles(self):
        profile = build_profile(nested_trace())
        table = profile["names"]
        assert table["compile"]["count"] == 1
        assert table["compile"]["total_s"] == pytest.approx(6.0)
        assert table["compile"]["self_s"] == pytest.approx(2.0)
        # Bounded-bucket quantiles are present and bracket the sample.
        assert table["compile"]["p50"] == pytest.approx(6.0, rel=0.1)
        assert table["compile"]["p99"] == pytest.approx(6.0, rel=0.1)

    def test_recursion_counts_total_once(self):
        spans = [
            _span(1, "point", 0.0, 8.0),
            _span(2, "point", 1.0, 4.0, parent=1),
            _span(3, "point", 2.0, 1.0, parent=2),
        ]
        profile = build_profile(spans)
        row = profile["names"]["point"]
        assert row["count"] == 3
        # Nested same-name calls fold into the outermost duration.
        assert row["total_s"] == pytest.approx(8.0)
        assert row["self_s"] == pytest.approx(8.0)
        assert profile["wall_s"] == pytest.approx(8.0)

    def test_orphan_spans_become_roots(self):
        # A crashed run: the parent span never flushed.
        spans = [_span(5, "compile.route", 1.0, 4.0, parent=99)]
        profile = build_profile(spans)
        assert profile["wall_s"] == pytest.approx(4.0)
        assert profile["tree"][0]["path"] == "compile.route"

    def test_deterministic_under_input_order(self):
        spans = nested_trace()
        a = json.dumps(build_profile(spans), sort_keys=True)
        b = json.dumps(build_profile(list(reversed(spans))), sort_keys=True)
        assert a == b
        assert format_profile(build_profile(spans)) == \
            format_profile(build_profile(list(reversed(spans))))

    def test_critical_path_descends_longest_child(self):
        profile = build_profile(nested_trace())
        path = [node["name"] for node in profile["critical_path"]]
        assert path == ["root", "compile", "compile.route"]

    def test_empty_trace(self):
        profile = build_profile([])
        assert profile["num_spans"] == 0
        assert profile["wall_s"] == 0.0
        assert profile["critical_path"] == []
        assert "0 spans" in format_profile(profile)


class TestCollapsedStacks:
    def test_format_and_negative_clamp(self):
        tree = {("a",): {"count": 1, "total_s": 2.0, "self_s": 1.5},
                ("a", "b"): {"count": 1, "total_s": 0.5, "self_s": -0.25},
                ("c",): {"count": 1, "total_s": 0.0, "self_s": 0.0}}
        lines = collapsed_stacks(tree)
        # Negative self (thread overlap) is floored, zero rows dropped.
        assert lines == ["a 1500000"]

    def test_profile_collapsed_matches_tree(self):
        profile = build_profile(nested_trace())
        assert "root;compile;compile.route 4000000" in profile["collapsed"]


class TestParseSpansJsonl:
    def test_round_trip_path_and_text(self, tmp_path):
        text = "\n".join(json.dumps(record) for record in nested_trace())
        path = tmp_path / "t.spans.jsonl"
        path.write_text(text + "\n", encoding="utf-8")
        assert parse_spans_jsonl(path) == parse_spans_jsonl(text + "\n")
        assert len(parse_spans_jsonl(path)) == 4

    def test_rejects_non_span_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a span"}\n', encoding="utf-8")
        with pytest.raises(ValueError):
            parse_spans_jsonl(path)


# --------------------------------------------------------------------------- #
class TestProfileCLI:
    def test_profile_of_traced_run(self, tmp_path, capsys):
        trace = tmp_path / "run.json"
        assert main(["run", "--app", "BV", "--qubits", "6",
                     "--capacity", "8", "--topology", "L2",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["profile", str(trace)]) == 0
        report = capsys.readouterr().out
        assert "traced wall time" in report
        assert "critical path:" in report
        out_json = tmp_path / "profile.json"
        assert main(["profile", str(trace),
                     "--output", str(out_json)]) == 0
        capsys.readouterr()
        profile = json.loads(out_json.read_text(encoding="utf-8"))
        total_self = sum(node["self_s"] for node in profile["tree"])
        # Per-stage totals sum to the traced wall within rounding.
        assert total_self == pytest.approx(profile["wall_s"], abs=1e-9)
        # Deterministic: profiling the same trace twice renders the same
        # report bytes.
        assert main(["profile", str(trace)]) == 0
        assert capsys.readouterr().out == report

    def test_collapsed_output(self, tmp_path, capsys):
        spans = tmp_path / "t.spans.jsonl"
        spans.write_text(
            "\n".join(json.dumps(r) for r in nested_trace()) + "\n",
            encoding="utf-8")
        collapsed = tmp_path / "stacks.txt"
        assert main(["profile", str(spans),
                     "--collapsed", str(collapsed)]) == 0
        lines = collapsed.read_text(encoding="utf-8").splitlines()
        assert "root;compile;compile.route 4000000" in lines


# --------------------------------------------------------------------------- #
class TestFlushOnFailure:
    def test_trace_written_when_command_raises(self, tmp_path, monkeypatch,
                                               capsys):
        import repro.cli as cli

        def boom(args):
            from repro.obs import span
            with span("doomed.phase"):
                pass
            raise RuntimeError("mid-command crash")

        monkeypatch.setitem(cli._COMMANDS, "run", boom) \
            if hasattr(cli, "_COMMANDS") else \
            monkeypatch.setattr(cli, "_cmd_run", boom)
        trace = tmp_path / "crash.json"
        with pytest.raises(RuntimeError):
            main(["run", "--app", "BV", "--qubits", "6",
                  "--capacity", "8", "--topology", "L2",
                  "--trace", str(trace)])
        # The partial trace still landed -- all three artefacts.
        assert trace.exists()
        assert trace.with_suffix("").with_suffix(".spans.jsonl").exists() or \
            Path(str(trace).replace(".json", ".spans.jsonl")).exists()
        out = capsys.readouterr().err + capsys.readouterr().out
        spans = parse_spans_jsonl(
            Path(str(trace).replace(".json", ".spans.jsonl")))
        assert any(record["name"] == "doomed.phase" for record in spans)


# --------------------------------------------------------------------------- #
class TestClassifyMetric:
    @pytest.mark.parametrize("key,expected", [
        ("sweep_s", "lower"),
        ("p99_us", "lower"),
        ("rss_bytes", "lower"),
        ("overhead_pct", "lower"),
        ("replay_latency", "lower"),
        ("speedup", "higher"),
        ("cache_hit_rate", "higher"),
        ("points_per_s", "higher"),
        ("points", None),
        ("variants", None),
    ])
    def test_direction(self, key, expected):
        assert classify_metric(key) == expected


class TestCompareBench:
    def _artefact(self, **metrics):
        return {"machine": "m1", "scale": "smoke",
                "sections": {"sweep": {**metrics,
                                       "_meta": {"metrics": {"x": 1}}}}}

    def test_identical_is_ok(self):
        artefact = self._artefact(sweep_s=1.0, points=96)
        report = compare_bench(artefact, artefact)
        assert report["regressions"] == 0
        assert "verdict: OK" in format_bench_diff(report)

    def test_regression_direction_and_threshold(self):
        old = self._artefact(sweep_s=1.0, speedup=2.0, points=96)
        new = self._artefact(sweep_s=1.5, speedup=1.0, points=200)
        report = compare_bench(old, new, threshold=0.25)
        kinds = {row["key"]: row["kind"] for row in report["rows"]}
        assert kinds["sweep_s"] == "regression"      # time up 50%
        assert kinds["speedup"] == "regression"      # higher-better halved
        assert kinds["points"] == "info"             # direction-free
        assert report["regressions"] == 2
        # Under threshold: worse but tolerated.
        mild = compare_bench(old, self._artefact(sweep_s=1.1, speedup=2.0,
                                                 points=96),
                             threshold=0.25)
        assert {row["kind"] for row in mild["rows"]} == {"worse"}
        assert mild["regressions"] == 0

    def test_improvements_never_fail(self):
        old = self._artefact(sweep_s=2.0)
        new = self._artefact(sweep_s=0.5)
        report = compare_bench(old, new)
        assert report["regressions"] == 0
        assert report["rows"][0]["kind"] == "improved"

    def test_meta_subtrees_excluded(self):
        old = self._artefact(sweep_s=1.0)
        new = self._artefact(sweep_s=1.0)
        new["sections"]["sweep"]["_meta"] = {"metrics": {"x": 999}}
        assert compare_bench(old, new)["rows"] == []

    def test_added_and_removed_sections(self):
        old = {"sections": {"gone": {"x_s": 1.0}}}
        new = {"sections": {"fresh": {"y_s": 1.0}}}
        kinds = {(row["section"], row["kind"])
                 for row in compare_bench(old, new)["rows"]}
        assert kinds == {("gone", "removed"), ("fresh", "added")}

    def test_cross_machine_flagged_incomparable(self):
        old = self._artefact(sweep_s=1.0)
        new = dict(self._artefact(sweep_s=1.0), machine="m2")
        report = compare_bench(old, new)
        assert report["comparable"] is False
        assert "indicative only" in format_bench_diff(report)


class TestBenchDiffCLI:
    def _write(self, path, **metrics):
        payload = {"machine": "m1", "scale": "smoke",
                   "sections": {"sweep": metrics}}
        path.write_text(json.dumps(payload), encoding="utf-8")

    def test_exit_codes(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._write(old, sweep_s=1.0)
        self._write(new, sweep_s=1.0)
        assert main(["bench", "diff", str(old), str(new)]) == 0
        assert "verdict: OK" in capsys.readouterr().out
        # Injected synthetic regression: nonzero exit.
        self._write(new, sweep_s=100.0)
        assert main(["bench", "diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "sweep.sweep_s" in out

    def test_report_output_file(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._write(old, sweep_s=1.0)
        self._write(new, sweep_s=100.0)
        report_path = tmp_path / "report.json"
        assert main(["bench", "diff", str(old), str(new),
                     "--output", str(report_path)]) == 1
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["regressions"] == 1


# --------------------------------------------------------------------------- #
class TestBenchArtefactSchema:
    def test_record_bench_embeds_meta(self, tmp_path, monkeypatch):
        import benchmarks._common as common

        monkeypatch.setattr(common, "BENCH_DATA_DIR", tmp_path)
        common.record_bench("unit", "sectionA", {"metric_s": 1.25})
        artefact = json.loads(
            (tmp_path / "BENCH_unit.json").read_text(encoding="utf-8"))
        assert artefact["bench_schema"] == common.BENCH_SCHEMA_VERSION
        meta = artefact["sections"]["sectionA"]["_meta"]
        assert set(meta) == {"config_fingerprint", "metrics", "trace_schema"}
        assert isinstance(meta["config_fingerprint"], str)
        # The fingerprint is stable for identical payloads.
        common.record_bench("unit", "sectionA", {"metric_s": 1.25})
        again = json.loads(
            (tmp_path / "BENCH_unit.json").read_text(encoding="utf-8"))
        assert again["sections"]["sectionA"]["_meta"]["config_fingerprint"] \
            == meta["config_fingerprint"]

"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.compiler import compile_circuit
from repro.hardware import build_device
from repro.ir.circuit import Circuit
from repro.ir.dag import DependencyDAG
from repro.ir.gate import Gate
from repro.isa.operations import GateOp, OpKind
from repro.models.fidelity import FidelityModel
from repro.models.gate_times import gate_time
from repro.models.heating import HeatingModel
from repro.models.params import FidelityParams, HeatingParams
from repro.sim import simulate


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
def random_circuits(max_qubits: int = 8, max_gates: int = 40):
    """Strategy producing random native-gate circuits."""

    @st.composite
    def build(draw):
        num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
        num_gates = draw(st.integers(min_value=0, max_value=max_gates))
        circuit = Circuit(num_qubits, name="random")
        for _ in range(num_gates):
            if draw(st.booleans()):
                qubit = draw(st.integers(0, num_qubits - 1))
                circuit.append(Gate("h", (qubit,)))
            else:
                qubit_a = draw(st.integers(0, num_qubits - 1))
                qubit_b = draw(st.integers(0, num_qubits - 1))
                if qubit_a == qubit_b:
                    continue
                circuit.append(Gate("cx", (qubit_a, qubit_b)))
        return circuit

    return build()


# --------------------------------------------------------------------------- #
# Heating model invariants
# --------------------------------------------------------------------------- #
@given(energy=st.floats(min_value=0.0, max_value=1e3),
       chain_size=st.integers(min_value=1, max_value=50),
       split_size=st.integers(min_value=1, max_value=50))
def test_split_conserves_energy_plus_k1(energy, chain_size, split_size):
    split_size = min(split_size, chain_size)
    model = HeatingModel(HeatingParams())
    remaining, split_off = model.split(energy, chain_size, split_size)
    # Energy is conserved up to the k1 quanta added to each resulting chain
    # (only one chain remains when the whole chain is split off).
    expected_extra = 0.1 if split_size == chain_size else 0.2
    assert remaining >= 0.0 and split_off >= 0.0
    assert math.isclose(remaining + split_off, energy + expected_extra,
                        rel_tol=1e-9, abs_tol=1e-9)


@given(energy_a=st.floats(min_value=0.0, max_value=1e3),
       energy_b=st.floats(min_value=0.0, max_value=1e3))
def test_merge_monotone(energy_a, energy_b):
    model = HeatingModel(HeatingParams())
    merged = model.merge(energy_a, energy_b)
    assert merged >= energy_a
    assert merged >= energy_b


@given(energy=st.floats(min_value=0.0, max_value=1e3),
       segments=st.integers(min_value=0, max_value=100))
def test_move_monotone(energy, segments):
    model = HeatingModel(HeatingParams())
    assert model.move(energy, segments) >= energy


# --------------------------------------------------------------------------- #
# Gate time and fidelity invariants
# --------------------------------------------------------------------------- #
@given(chain=st.integers(min_value=2, max_value=60),
       distance=st.integers(min_value=0, max_value=58),
       implementation=st.sampled_from(["AM1", "AM2", "PM", "FM"]))
def test_gate_time_positive_and_finite(chain, distance, implementation):
    distance = min(distance, chain - 2)
    duration = gate_time(implementation, distance=distance, chain_length=chain)
    assert 0.0 < duration < 1e5


@given(duration=st.floats(min_value=0.0, max_value=1e4),
       chain=st.integers(min_value=2, max_value=60),
       energy=st.floats(min_value=0.0, max_value=1e4))
def test_fidelity_bounded(duration, chain, energy):
    model = FidelityModel(FidelityParams())
    fidelity = model.two_qubit_fidelity(duration=duration, chain_length=chain,
                                        motional_energy=energy)
    assert 0.0 <= fidelity <= 1.0


@given(chain=st.integers(min_value=2, max_value=60),
       energy_low=st.floats(min_value=0.0, max_value=100.0),
       energy_delta=st.floats(min_value=0.0, max_value=100.0))
def test_fidelity_monotone_in_energy(chain, energy_low, energy_delta):
    model = FidelityModel(FidelityParams())
    low = model.two_qubit_fidelity(duration=100.0, chain_length=chain,
                                   motional_energy=energy_low)
    high = model.two_qubit_fidelity(duration=100.0, chain_length=chain,
                                    motional_energy=energy_low + energy_delta)
    assert high <= low + 1e-12


# --------------------------------------------------------------------------- #
# Circuit / DAG invariants
# --------------------------------------------------------------------------- #
@settings(max_examples=30, deadline=None)
@given(circuit=random_circuits())
def test_dag_topological_order_is_valid(circuit):
    dag = DependencyDAG(circuit)
    order = dag.topological_order()
    assert sorted(order) == list(range(len(circuit)))
    position = {gate: i for i, gate in enumerate(order)}
    for gate in range(len(circuit)):
        for predecessor in dag.predecessors(gate):
            assert position[predecessor] < position[gate]


@settings(max_examples=30, deadline=None)
@given(circuit=random_circuits())
def test_depth_never_exceeds_gate_count(circuit):
    assert circuit.two_qubit_depth() <= circuit.depth() <= len(circuit)


# --------------------------------------------------------------------------- #
# Compile-and-simulate invariants on random circuits
# --------------------------------------------------------------------------- #
@settings(max_examples=20, deadline=None)
@given(circuit=random_circuits(max_qubits=8, max_gates=25),
       reorder=st.sampled_from(["GS", "IS"]),
       topology=st.sampled_from(["L3", "G2x2"]))
def test_compile_simulate_invariants(circuit, reorder, topology):
    device = build_device(topology, trap_capacity=6, num_qubits=8, reorder=reorder)
    program = compile_circuit(circuit, device)

    # Every application gate is preserved.
    assert program.count(OpKind.GATE_2Q) == circuit.num_two_qubit_gates
    assert program.count(OpKind.GATE_1Q) == circuit.num_single_qubit_gates

    # Dependencies always point backwards and annotations stay physical.
    for op in program.operations:
        assert all(dep < op.op_id for dep in op.dependencies)
        if isinstance(op, GateOp) and op.is_two_qubit:
            assert 0 <= op.ion_distance <= op.chain_length - 2

    result = simulate(program, device)
    assert result.duration >= 0.0
    assert 0.0 <= result.fidelity <= 1.0
    assert result.communication_time >= 0.0
    assert result.computation_time <= result.duration + 1e-9
    assert result.max_motional_energy >= 0.0
    # Splits and merges balance: every ion that leaves a chain re-enters one.
    assert program.count(OpKind.SPLIT) >= program.count(OpKind.MERGE) - 1
    counts = program.communication_summary()
    assert counts["splits"] + counts["merges"] >= 2 * program.num_shuttles - 1

"""Batch engine correctness: bit-identity to the serial simulator.

The batch engine (:mod:`repro.sim.batch`) shares one struct-of-arrays plan,
one timeline walk per distinct duration vector and one heating trajectory per
heating-constant vector across a whole axis of device variants.  Its single
correctness contract is that every result is **bit-identical** to calling
:func:`repro.sim.engine.simulate` once per variant -- these tests pin that
contract over the full application suite, both reorder methods, all four gate
implementations and the ablation parameter grids, plus the cache/dedup
behaviour the speedup relies on.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.apps.suite import scaled_suite
from repro.io.fingerprint import result_fingerprint
from repro.models.params import FidelityParams, HeatingParams
from repro.sim.batch import (
    BatchPlan,
    batch_plan,
    simulate_batch,
    simulate_gate_variants,
    simulate_model_variants,
)
from repro.sim.engine import simulate
from repro.toolflow import ArchitectureConfig
from repro.toolflow.runner import compile_for

APPS = ("QFT", "QAOA", "BV", "Adder", "SquareRoot", "Supremacy")
GATES = ("AM1", "AM2", "PM", "FM")
REORDERS = ("GS", "IS")
#: Heating-constant scales of benchmarks/bench_ablation_heating.py.
HEATING_SCALES = (0.1, 1.0, 10.0)


@pytest.fixture(scope="module")
def compiled():
    """``(app, reorder) -> (program, device)`` over the full suite."""

    suite = scaled_suite(8)
    programs = {}
    for reorder in REORDERS:
        config = ArchitectureConfig(topology="L3", trap_capacity=6,
                                    reorder=reorder)
        for app in APPS:
            programs[app, reorder] = compile_for(suite[app], config)
    return programs


def assert_identical(serial, batched):
    """Bit-identity including the insertion order of every reported dict."""

    assert result_fingerprint(serial) == result_fingerprint(batched)
    for field in ("op_counts", "final_trap_energies", "peak_occupancy",
                  "trap_gate_busy_time", "trap_comm_busy_time"):
        assert list(getattr(serial, field).items()) == \
               list(getattr(batched, field).items())


def heating_grid(model):
    """The heating ablation variants of ``bench_ablation_heating.py``."""

    models = []
    for scale in HEATING_SCALES:
        base = model.heating
        heating = HeatingParams(k1=base.k1 * scale, k2=base.k2 * scale,
                                k_junction=base.k_junction * scale,
                                background_rate=base.background_rate)
        models.append(replace(model, heating=heating))
    return models


def fidelity_grid(model):
    """Fidelity-parameter variants, including ones sharing every duration."""

    base = model.fidelity
    return [
        replace(model, fidelity=replace(base, background_heating_rate=2e-6)),
        replace(model, fidelity=replace(base, laser_instability_prefactor=6e-5)),
        replace(model, fidelity=replace(base, single_qubit_error=1e-3,
                                        measurement_error=1e-2)),
        replace(model, fidelity=replace(base, min_fidelity=0.5)),
        # Background rate feeds gate noise only, never durations or the
        # k1/k2 trajectory -- the cheapest possible batch variant.
        replace(model, heating=replace(model.heating, background_rate=4e-3)),
    ]


class TestGateVariantIdentity:
    @pytest.mark.parametrize("reorder", REORDERS)
    @pytest.mark.parametrize("app", APPS)
    def test_gate_fanout_bit_identical(self, compiled, app, reorder):
        program, device = compiled[app, reorder]
        batched = simulate_gate_variants(program, device, GATES)
        for gate, result in zip(GATES, batched):
            assert_identical(simulate(program, device.with_gate(gate)), result)

    def test_without_breakdown(self, compiled):
        program, device = compiled["QFT", "GS"]
        serial = [simulate(program, device.with_gate(g), with_breakdown=False)
                  for g in GATES]
        batched = simulate_batch(
            program, [device.with_gate(g) for g in GATES], with_breakdown=False)
        for s, b in zip(serial, batched):
            assert_identical(s, b)
            assert b.communication_time == 0.0
            assert b.computation_time == b.duration


class TestModelVariantIdentity:
    @pytest.mark.parametrize("app", APPS)
    def test_ablation_grids_bit_identical(self, compiled, app):
        program, device = compiled[app, "GS"]
        models = heating_grid(device.model) + fidelity_grid(device.model)
        batched = simulate_model_variants(program, device, models)
        for model, result in zip(models, batched):
            serial = simulate(program, replace(device, model=model, name=""))
            assert_identical(serial, result)

    def test_mixed_gate_and_model_axis(self, compiled):
        """One batch may mix gate and physical-model variation freely."""

        program, device = compiled["Adder", "IS"]
        devices = []
        for gate in ("AM1", "FM"):
            for model in heating_grid(device.model):
                devices.append(replace(device, gate=device.with_gate(gate).gate,
                                       model=model, name=""))
        batched = simulate_batch(program, devices)
        for variant, result in zip(devices, batched):
            assert_identical(simulate(program, variant), result)

    def test_zero_fidelity_edge(self, compiled):
        """A variant whose gate errors exceed 1 clamps to the 0-fidelity
        floor and drives the accumulated log-fidelity to -inf."""

        program, device = compiled["BV", "GS"]
        dead = replace(device.model, fidelity=FidelityParams(
            laser_instability_prefactor=1.0, min_fidelity=0.0))
        models = [device.model, dead]
        batched = simulate_model_variants(program, device, models)
        for model, result in zip(models, batched):
            assert_identical(simulate(program, replace(device, model=model,
                                                       name="")), result)
        assert batched[1].log_fidelity == float("-inf")
        assert batched[1].fidelity == 0.0

    def test_invalid_heating_params_raise_like_serial(self, compiled):
        program, device = compiled["QFT", "GS"]
        bad = replace(device.model,
                      heating=HeatingParams(background_rate=-1.0))
        with pytest.raises(ValueError):
            simulate(program, replace(device, model=bad, name=""))
        # Even when the trajectory/timeline would come from a cache, the
        # batch engine must validate every variant's parameters.
        simulate_model_variants(program, device, [device.model])
        with pytest.raises(ValueError):
            simulate_model_variants(program, device, [bad])


class TestPlanCaching:
    def test_plan_cached_on_program(self, compiled):
        program, device = compiled["QFT", "GS"]
        plan_a = batch_plan(program)
        plan_b = batch_plan(program)
        assert plan_a is plan_b
        assert plan_a is program._batch_plan

    def test_stats_accumulation(self, compiled):
        program, device = compiled["QAOA", "GS"]
        program = replace(program)  # fresh program object, no cached plan
        stats = {}
        simulate_gate_variants(program, device, GATES, stats=stats)
        assert stats["plans"] == 1
        assert stats["plan_reuses"] == 0
        assert stats["variants"] == len(GATES)
        assert stats["timelines"] + stats["timeline_hits"] == len(GATES)
        simulate_gate_variants(program, device, GATES, stats=stats)
        assert stats["plans"] == 1
        assert stats["plan_reuses"] == 1
        assert stats["variants"] == 2 * len(GATES)
        # Second pass reuses every timeline through the parameter-slot memo.
        assert stats["timeline_hits"] >= len(GATES)

    def test_fidelity_only_variants_share_one_timeline(self, compiled):
        program, device = compiled["QFT", "IS"]
        program = replace(program)
        models = [device.model] + fidelity_grid(device.model)
        stats = {}
        simulate_model_variants(program, device, models, stats=stats)
        # All variants share the gate/shuttle/single-qubit parameters, hence
        # one duration vector: one walk, the rest dedup hits.
        assert stats["timelines"] == 1
        assert stats["timeline_hits"] == len(models) - 1

    def test_duration_vector_collision_dedups(self, compiled):
        """Equal duration vectors map to the same timeline object."""

        program, device = compiled["QAOA", "GS"]
        plan = batch_plan(program)
        trap_names = tuple(t.name for t in device.topology.traps)
        durations = [1.0] * plan.num_ops
        first = plan.timeline_for(durations, trap_names)
        second = plan.timeline_for(list(durations), trap_names)
        assert first is second

    def test_empty_device_list(self, compiled):
        program, _ = compiled["BV", "GS"]
        assert simulate_batch(program, []) == []

    def test_topology_mismatch_rejected(self, compiled):
        program, device = compiled["QFT", "GS"]
        config = ArchitectureConfig(topology="L4", trap_capacity=6)
        other_device = config.build_device(8)
        with pytest.raises(ValueError):
            simulate_batch(program, [device, other_device])


class TestTimelineDedupProperty:
    """Random duration-vector collisions always dedup to one timeline."""

    def test_random_collisions_dedup(self, compiled):
        hypothesis = pytest.importorskip("hypothesis")
        given, settings, st = (hypothesis.given, hypothesis.settings,
                               hypothesis.strategies)

        program, device = compiled["Adder", "GS"]
        trap_names = tuple(t.name for t in device.topology.traps)
        num_ops = len(program.operations)

        @settings(max_examples=25, deadline=None)
        @given(st.lists(st.floats(min_value=0.0, max_value=1e4,
                                  allow_nan=False, width=32),
                        min_size=num_ops, max_size=num_ops),
               st.integers(min_value=2, max_value=5))
        def check(durations, repeats):
            plan = BatchPlan(program)  # fresh caches per example
            timelines = {plan.timeline_for(list(durations), trap_names)
                         for _ in range(repeats)}
            assert len(timelines) == 1
            assert plan.timelines_built == 1
            assert plan.timeline_hits == repeats - 1
            # A perturbed vector must not collide with the original.
            bumped = list(durations)
            if bumped:
                bumped[0] += 1.0
                assert plan.timeline_for(bumped, trap_names) not in timelines

        check()

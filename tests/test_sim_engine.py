"""Unit and integration tests for the simulation engine."""

import math

import pytest

from repro.compiler import compile_circuit
from repro.hardware import build_device
from repro.ir.circuit import Circuit
from repro.isa.operations import OpKind
from repro.models.gate_times import fm_gate_time
from repro.sim import simulate
from repro.sim.resources import ResourceTimeline


class TestResourceTimeline:
    def test_initially_free(self):
        timeline = ResourceTimeline()
        assert timeline.available_at(["T0", "S1"]) == 0.0

    def test_occupy_and_query(self):
        timeline = ResourceTimeline()
        timeline.occupy(["T0"], 0.0, 10.0)
        assert timeline.available_at(["T0"]) == 10.0
        assert timeline.available_at(["T1"]) == 0.0
        assert timeline.busy_time("T0") == 10.0

    def test_conflicting_occupation_rejected(self):
        timeline = ResourceTimeline()
        timeline.occupy(["T0"], 0.0, 10.0)
        with pytest.raises(ValueError):
            timeline.occupy(["T0"], 5.0, 15.0)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            ResourceTimeline().occupy(["T0"], 5.0, 1.0)

    def test_utilisation(self):
        timeline = ResourceTimeline()
        timeline.occupy(["T0"], 0.0, 25.0)
        assert timeline.utilisation("T0", 100.0) == pytest.approx(0.25)
        assert timeline.utilisation("T0", 0.0) == 0.0


class TestTimingModel:
    def test_single_gate_duration(self):
        device = build_device("L2", trap_capacity=6, num_qubits=2, gate="FM")
        circuit = Circuit(2).add("cx", 0, 1)
        result = simulate(compile_circuit(circuit, device), device)
        assert result.duration == pytest.approx(fm_gate_time(2))

    def test_gates_in_one_trap_serialise(self):
        device = build_device("L2", trap_capacity=6, num_qubits=4, gate="FM")
        circuit = Circuit(4)
        circuit.add("cx", 0, 1)
        circuit.add("cx", 2, 3)
        program = compile_circuit(circuit, device)
        result = simulate(program, device)
        # Both gates run in the same trap and must serialise.
        assert result.duration == pytest.approx(2 * fm_gate_time(4))

    def test_gates_in_different_traps_overlap(self):
        device = build_device("L2", trap_capacity=4, num_qubits=4, gate="FM")
        circuit = Circuit(4)
        circuit.add("cx", 0, 1)  # trap T0
        circuit.add("cx", 2, 3)  # trap T1
        program = compile_circuit(circuit, device)
        result = simulate(program, device)
        assert result.duration == pytest.approx(fm_gate_time(2))

    def test_shuttle_time_components(self):
        device = build_device("L2", trap_capacity=4, num_qubits=4, gate="FM")
        # First-use order places {0,1} in T0 and {2,3} in T1; the third gate
        # spans the traps.  Qubit 1 sits at T0's tail (the port toward T1), so
        # its shuttle is a pure split + move + merge with no reordering.
        circuit = Circuit(4)
        circuit.add("cx", 0, 1)
        circuit.add("cx", 2, 3)
        circuit.add("cx", 1, 3)
        program = compile_circuit(circuit, device)
        result = simulate(program, device)
        shuttle = device.model.shuttle
        local_gates = fm_gate_time(2)  # the first two gates run in parallel
        expected_comm = shuttle.split + shuttle.move_segment + shuttle.merge
        final_gate = fm_gate_time(3)  # destination chain has 3 ions
        assert result.duration == pytest.approx(local_gates + expected_comm + final_gate)
        assert result.communication_time == pytest.approx(expected_comm)
        assert result.computation_time == pytest.approx(local_gates + final_gate)

    def test_timeline_records_every_op(self, simulated_qft8):
        program, _, result = simulated_qft8
        assert result.timeline is not None
        assert len(result.timeline) == len(program)
        for record in result.timeline:
            assert record.finish >= record.start >= 0.0

    def test_timeline_respects_dependencies(self, simulated_qft8):
        program, _, result = simulated_qft8
        finish = {record.op_id: record.finish for record in result.timeline}
        start = {record.op_id: record.start for record in result.timeline}
        for op in program.operations:
            for dep in op.dependencies:
                assert start[op.op_id] >= finish[dep] - 1e-9

    def test_resources_never_overlap(self, simulated_qft8):
        program, _, result = simulated_qft8
        intervals = {}
        for record in result.timeline:
            for resource in program[record.op_id].resources:
                intervals.setdefault(resource, []).append((record.start, record.finish))
        for spans in intervals.values():
            spans.sort()
            for (s1, f1), (s2, _f2) in zip(spans, spans[1:]):
                assert s2 >= f1 - 1e-9

    def test_makespan_equals_last_finish(self, simulated_qft8):
        _, _, result = simulated_qft8
        assert result.duration == pytest.approx(max(r.finish for r in result.timeline))


class TestNoiseModel:
    def test_fidelity_in_unit_interval(self, simulated_qft8):
        _, _, result = simulated_qft8
        assert 0.0 <= result.fidelity <= 1.0
        assert result.log_fidelity <= 0.0

    def test_fidelity_product_matches_timeline(self, simulated_qft8):
        _, _, result = simulated_qft8
        product = 0.0
        for record in result.timeline:
            product += math.log(record.fidelity) if record.fidelity > 0 else -math.inf
        assert product == pytest.approx(result.log_fidelity, rel=1e-9)

    def test_communication_free_circuit_has_zero_motional_energy(self, bell_circuit):
        device = build_device("L2", trap_capacity=6, num_qubits=2)
        result = simulate(compile_circuit(bell_circuit, device), device)
        assert result.max_motional_energy == 0.0
        assert result.num_shuttles == 0

    def test_shuttling_heats_chains(self):
        device = build_device("L2", trap_capacity=4, num_qubits=4)
        circuit = Circuit(4)
        circuit.add("cx", 0, 1)
        circuit.add("cx", 2, 3)
        circuit.add("cx", 1, 3)
        result = simulate(compile_circuit(circuit, device), device)
        assert result.max_motional_energy > 0.0
        assert result.final_trap_energies["T1"] > 0.0

    def test_error_breakdown_totals(self, simulated_qft8):
        _, _, result = simulated_qft8
        assert result.total_motional_error > 0.0
        assert result.total_background_error > 0.0
        assert result.mean_motional_error > result.mean_background_error

    def test_more_heating_means_less_fidelity(self, qft8):
        cold = build_device("L3", trap_capacity=6, num_qubits=8)
        hot_model = cold.model
        from dataclasses import replace
        from repro.models.params import HeatingParams
        hot = replace(cold, model=replace(hot_model, heating=HeatingParams(k1=2.0, k2=0.5)),
                      name="hot")
        program = compile_circuit(qft8, cold)
        assert simulate(program, hot).fidelity < simulate(program, cold).fidelity

    def test_peak_occupancy_within_capacity(self, simulated_qft8):
        _, device, result = simulated_qft8
        for trap, peak in result.peak_occupancy.items():
            assert peak <= device.topology.trap(trap).capacity + 1

    def test_gate_implementation_changes_results(self, compiled_qft8):
        program, device = compiled_qft8
        fm = simulate(program, device)
        am1 = simulate(program, device.with_gate("AM1"))
        assert fm.duration != am1.duration
        assert fm.fidelity != am1.fidelity

    def test_breakdown_flag(self, compiled_qft8):
        program, device = compiled_qft8
        quick = simulate(program, device, with_breakdown=False)
        assert quick.communication_time == 0.0
        full = simulate(program, device, with_breakdown=True)
        assert full.communication_time > 0.0
        assert full.duration == pytest.approx(quick.duration)

"""Unit tests for simulation results and derived metrics."""

import math

import pytest

from repro.isa.operations import OpKind
from repro.sim.metrics import (
    communication_fraction,
    device_heating_summary,
    gate_parallelism,
    mean_two_qubit_error,
    program_expansion,
    reorder_overhead,
    shuttles_per_two_qubit_gate,
)
from repro.sim.results import OperationRecord, SimulationResult


def make_result(**overrides):
    base = dict(
        duration=1000.0,
        fidelity=0.5,
        log_fidelity=math.log(0.5),
        computation_time=600.0,
        communication_time=400.0,
        op_counts={OpKind.GATE_2Q: 10, OpKind.SPLIT: 4, OpKind.MERGE: 4,
                   OpKind.MOVE: 6, OpKind.SWAP_GATE: 2, OpKind.GATE_1Q: 5},
        mean_background_error=1e-5,
        mean_motional_error=4e-4,
        total_background_error=1e-4,
        total_motional_error=4e-3,
        max_motional_energy=7.5,
        final_trap_energies={"T0": 3.0, "T1": 5.0},
        peak_occupancy={"T0": 10, "T1": 12},
        num_shuttles=4,
        num_ms_gates=16,
        trap_gate_busy_time={"T0": 300.0, "T1": 500.0},
        trap_comm_busy_time={"T0": 100.0, "T1": 50.0},
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestSimulationResult:
    def test_unit_conversions(self):
        result = make_result()
        assert result.duration_seconds == pytest.approx(1e-3)
        assert result.computation_seconds == pytest.approx(6e-4)
        assert result.communication_seconds == pytest.approx(4e-4)

    def test_error_rate(self):
        assert make_result().error_rate == pytest.approx(0.5)

    def test_mean_two_qubit_error(self):
        assert make_result().mean_two_qubit_error == pytest.approx(4.1e-4)

    def test_count_helpers(self):
        result = make_result()
        assert result.count(OpKind.SPLIT) == 4
        assert result.count(OpKind.ION_SWAP) == 0
        assert result.num_communication_ops == 16

    def test_as_dict_keys(self):
        row = make_result().as_dict()
        assert row["fidelity"] == 0.5
        assert row["duration_s"] == pytest.approx(1e-3)
        assert "max_motional_energy" in row

    def test_fidelity_from_log(self):
        assert SimulationResult.fidelity_from_log(-math.inf) == 0.0
        assert SimulationResult.fidelity_from_log(0.0) == 1.0
        assert SimulationResult.fidelity_from_log(math.log(0.25)) == pytest.approx(0.25)

    def test_operation_record_duration(self):
        record = OperationRecord(op_id=0, kind=OpKind.MOVE, start=5.0, finish=9.0)
        assert record.duration == pytest.approx(4.0)


class TestMetrics:
    def test_communication_fraction(self):
        assert communication_fraction(make_result()) == pytest.approx(0.4)
        assert communication_fraction(make_result(duration=0.0)) == 0.0

    def test_mean_two_qubit_error_helper(self):
        assert mean_two_qubit_error(make_result()) == pytest.approx(4.1e-4)

    def test_shuttles_per_gate(self):
        assert shuttles_per_two_qubit_gate(make_result()) == pytest.approx(0.4)
        empty = make_result(op_counts={}, num_shuttles=0)
        assert shuttles_per_two_qubit_gate(empty) == 0.0

    def test_reorder_overhead(self):
        overhead = reorder_overhead(make_result())
        assert overhead == {"swap_gates": 2, "ion_swaps": 0}

    def test_device_heating_summary(self):
        summary = device_heating_summary(make_result())
        assert summary["max_motional_energy"] == 7.5
        assert summary["final_max_energy"] == 5.0
        assert summary["final_mean_energy"] == pytest.approx(4.0)

    def test_gate_parallelism(self):
        assert gate_parallelism(make_result()) == pytest.approx(0.8)
        assert gate_parallelism(make_result(duration=0.0)) == 0.0

    def test_program_expansion(self, compiled_qft8):
        program, _ = compiled_qft8
        assert program_expansion(program) >= 1.0

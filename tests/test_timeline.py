"""Tests for the fleet timeline (repro.obs.timeline) and telemetry rotation.

The ISSUE's determinism bar: the same telemetry event set must fold into
byte-identical series -- and render a byte-identical ``dse top`` frame --
no matter how the events were split across worker files or what order the
files are read in.  Everything here drives the injectable
:class:`LeaseClock` with a fake clock; no test sleeps or spawns a fleet.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dse.dispatch import (
    DEFAULT_TTL_S,
    LeaseClock,
    WorkerTelemetry,
    read_telemetry,
    telemetry_summary,
)
from repro.obs.timeline import (
    DEFAULT_BUCKET_S,
    FleetMonitor,
    TelemetryReader,
    detect_stragglers,
    fold_timeline,
    render_top,
    rolling_rates,
)
from repro.visualize.ascii_chart import ascii_sparkline


class FakeClock(LeaseClock):
    """A LeaseClock the test advances by hand."""

    def __init__(self, start: float = 1000.0) -> None:
        super().__init__(now_fn=lambda: self.t)
        self.t = start

    def advance(self, seconds: float) -> None:
        self.t += seconds


def synthetic_fleet(tmp_path, *, workers=3, rounds=4, clock=None,
                    max_bytes=None):
    """Emit a deterministic fleet history; returns the clock used."""

    clock = clock or FakeClock()
    logs = [WorkerTelemetry(tmp_path, f"w{i}", clock=clock,
                            max_bytes=max_bytes)
            for i in range(workers)]
    for log in logs:
        log.emit("worker_start", mode="shards", shards=workers * rounds,
                 jobs=1, pid=1)
    for round_index in range(rounds):
        for worker_index, log in enumerate(logs):
            clock.advance(1.0)
            log.emit("claim", work=f"s{round_index}-{worker_index}")
            clock.advance(2.0)
            log.emit("done", work=f"s{round_index}-{worker_index}",
                     points=4 + worker_index, replayed=1, wall_s=2.0,
                     counters={"cache.hits": 3, "cache.misses": 1})
    return clock


# --------------------------------------------------------------------------- #
class TestFoldTimeline:
    def test_series_shape_and_totals(self, tmp_path):
        clock = synthetic_fleet(tmp_path)
        events = read_telemetry(tmp_path)
        timeline = fold_timeline(events, bucket_s=5.0)
        assert timeline["bucket_s"] == 5.0
        assert sorted(timeline["workers"]) == ["w0", "w1", "w2"]
        fleet_points = sum(b["points"] for b in timeline["fleet"])
        per_worker = {owner: sum(b["points"] for b in series)
                      for owner, series in timeline["workers"].items()}
        # 4 rounds x (4, 5, 6) points per worker.
        assert per_worker == {"w0": 16, "w1": 20, "w2": 24}
        assert fleet_points == 60
        hits = sum(b["cache_hits"] for b in timeline["fleet"])
        misses = sum(b["cache_misses"] for b in timeline["fleet"])
        assert (hits, misses) == (36, 12)
        assert sum(b["claims"] for b in timeline["fleet"]) == 12
        assert timeline["compacted"] == {}

    def test_until_t_extends_with_empty_buckets(self, tmp_path):
        clock = synthetic_fleet(tmp_path)
        events = read_telemetry(tmp_path)
        short = fold_timeline(events, bucket_s=5.0)
        extended = fold_timeline(events, bucket_s=5.0,
                                 until_t=clock.now() + 40.0)
        assert extended["num_buckets"] > short["num_buckets"]
        tail = extended["fleet"][short["num_buckets"]:]
        assert all(b["points"] == 0 for b in tail)
        # The anchored prefix is identical: origin is content-derived.
        assert extended["fleet"][:short["num_buckets"]] == short["fleet"]

    def test_empty_events(self):
        timeline = fold_timeline([])
        assert timeline["num_buckets"] == 0
        assert timeline["fleet"] == []
        assert rolling_rates(timeline) == {}

    def test_bad_bucket_rejected(self):
        with pytest.raises(ValueError):
            fold_timeline([], bucket_s=0.0)


# --------------------------------------------------------------------------- #
class TestTimelineDeterminism:
    """Same event set => byte-identical series, any split, any read order."""

    def test_fold_is_invariant_to_event_order(self, tmp_path):
        synthetic_fleet(tmp_path)
        events = read_telemetry(tmp_path)
        baseline = json.dumps(fold_timeline(events, bucket_s=5.0),
                              sort_keys=True)
        for rotation in (1, 7, len(events) - 1):
            shuffled = events[rotation:] + list(reversed(events[:rotation]))
            assert json.dumps(fold_timeline(shuffled, bucket_s=5.0),
                              sort_keys=True) == baseline

    def test_fold_is_invariant_to_file_split(self, tmp_path):
        # The same history emitted as 1 worker file vs split across 4:
        # identical event *content* must fold identically, so we emit one
        # owner's events through differently-named telemetry writers.
        clock_a = FakeClock()
        a_dir = tmp_path / "one"
        log = WorkerTelemetry(a_dir, "w0", clock=clock_a)
        for i in range(12):
            clock_a.advance(1.0)
            log.emit("done", work=f"s{i}", points=2, replayed=0, wall_s=1.0)

        clock_b = FakeClock()
        b_dir = tmp_path / "many"
        logs = [WorkerTelemetry(b_dir, "w0", clock=clock_b) for _ in range(4)]
        # Same owner, same events, but interleaved across four files (the
        # single-writer rule is per real worker; the test just needs the
        # directory union to carry identical records).
        for i in range(12):
            clock_b.advance(1.0)
            logs[i % 4].emit("done", work=f"s{i}", points=2, replayed=0,
                             wall_s=1.0)
        fold_a = fold_timeline(read_telemetry(a_dir), bucket_s=5.0)
        fold_b = fold_timeline(read_telemetry(b_dir), bucket_s=5.0)
        assert json.dumps(fold_a, sort_keys=True) == \
            json.dumps(fold_b, sort_keys=True)

    def test_top_frame_is_byte_identical(self, tmp_path):
        clock = synthetic_fleet(tmp_path)
        events = read_telemetry(tmp_path)
        workers = telemetry_summary(tmp_path, now=clock.now())
        frames = []
        for rotation in (0, 5):
            shuffled = events[rotation:] + events[:rotation]
            timeline = fold_timeline(shuffled, bucket_s=5.0,
                                     until_t=clock.now())
            snapshot = {"store": "fleet", "workers": workers,
                        "timeline": timeline,
                        "stragglers": detect_stragglers(
                            workers, ttl_s=60.0, timeline=timeline)}
            frames.append(render_top(snapshot))
        assert frames[0] == frames[1]
        assert "workers (3):" in frames[0]


# --------------------------------------------------------------------------- #
class TestTelemetryReader:
    def test_incremental_poll_matches_full_read(self, tmp_path):
        clock = FakeClock()
        reader = TelemetryReader(tmp_path)
        assert reader.poll() == 0
        log = WorkerTelemetry(tmp_path, "w0", clock=clock)
        log.emit("worker_start", pid=1)
        assert reader.poll() == 1
        for i in range(5):
            clock.advance(1.0)
            log.emit("done", work=f"s{i}", points=1, replayed=0, wall_s=0.5)
        assert reader.poll() == 5
        assert reader.poll() == 0  # nothing new: stat-skip path
        expected = read_telemetry(tmp_path)
        assert json.dumps(reader.events, sort_keys=True) == \
            json.dumps(expected, sort_keys=True)

    def test_torn_tail_line_is_deferred(self, tmp_path):
        clock = FakeClock()
        log = WorkerTelemetry(tmp_path, "w0", clock=clock)
        log.emit("worker_start", pid=1)
        reader = TelemetryReader(tmp_path)
        assert reader.poll() == 1
        # A live writer's partial append: no trailing newline yet.
        with log.path.open("a", encoding="utf-8") as handle:
            handle.write('{"t": 1001.0, "owner": "w0", "event": "cl')
        assert reader.poll() == 0
        with log.path.open("a", encoding="utf-8") as handle:
            handle.write('aim", "work": "s0"}\n')
        assert reader.poll() == 1
        assert reader.events[-1]["event"] == "claim"

    def test_rotation_triggers_rescan_not_double_count(self, tmp_path):
        clock = FakeClock()
        # Tiny cap: every few emits rotate, and compaction folds history.
        log = WorkerTelemetry(tmp_path, "w0", clock=clock, max_bytes=120,
                              keep_segments=1)
        reader = TelemetryReader(tmp_path)
        for i in range(30):
            clock.advance(1.0)
            log.emit("done", work=f"s{i}", points=1, replayed=0, wall_s=0.5)
            reader.poll()
        timeline = fold_timeline(reader.events, bucket_s=5.0)
        live = sum(b["points"] for b in timeline["fleet"])
        folded = sum(t["points"] for t in timeline["compacted"].values())
        assert live + folded == 30
        # And the one-shot reader agrees with the incremental one.
        fresh = fold_timeline(read_telemetry(tmp_path), bucket_s=5.0)
        assert sum(b["points"] for b in fresh["fleet"]) + \
            sum(t["points"] for t in fresh["compacted"].values()) == 30


# --------------------------------------------------------------------------- #
class TestRotationCompaction:
    def test_summary_preserves_totals(self, tmp_path):
        clock = FakeClock()
        log = WorkerTelemetry(tmp_path, "w0", clock=clock, max_bytes=150,
                              keep_segments=2)
        log.emit("worker_start", mode="shards", shards=8, jobs=1, pid=1)
        for i in range(40):
            clock.advance(1.0)
            log.emit("claim", work=f"s{i}")
            clock.advance(1.0)
            log.emit("done", work=f"s{i}", points=3, replayed=1, wall_s=1.0)
        log.emit("worker_exit", completed=40, lost=0, counters={})
        summary = telemetry_summary(tmp_path, now=clock.now())
        row = summary["w0"]
        assert row["claims"] == 40
        assert row["done"] == 40
        assert row["points"] == 120
        assert row["replayed"] == 40
        assert row["wall_s"] == pytest.approx(40.0)
        assert row["alive"] is False
        # The directory stayed bounded: active + keep raw segments + seg0.
        names = sorted(p.name for p in (tmp_path / "telemetry").iterdir())
        raw = [n for n in names if ".seg" in n and ".seg0." not in n]
        assert len(raw) <= 2
        assert "w0.seg0.jsonl" in names

    def test_segment_numbers_never_reused(self, tmp_path):
        clock = FakeClock()
        log = WorkerTelemetry(tmp_path, "w0", clock=clock, max_bytes=100,
                              keep_segments=1)
        for i in range(30):
            clock.advance(1.0)
            log.emit("done", work=f"s{i}", points=1, replayed=0, wall_s=0.1)
        summary_row = [r for r in read_telemetry(tmp_path)
                       if r.get("event") == "summary"]
        assert summary_row, "compaction should have produced a summary"
        through = summary_row[0]["folded_through"]
        live_segments = [int(p.name.split(".seg")[1].split(".")[0])
                         for p in (tmp_path / "telemetry").glob("*.seg*.jsonl")
                         if ".seg0." not in p.name]
        # Every surviving raw segment postdates the folded history, so no
        # reader can double-count a rotated event.
        assert all(k > through for k in live_segments)

    def test_rotation_disabled_by_default_size(self, tmp_path):
        clock = FakeClock()
        log = WorkerTelemetry(tmp_path, "w0", clock=clock)  # 1 MiB cap
        for i in range(50):
            clock.advance(1.0)
            log.emit("done", work=f"s{i}", points=1, replayed=0, wall_s=0.1)
        names = [p.name for p in (tmp_path / "telemetry").iterdir()]
        assert names == ["w0.jsonl"]


# --------------------------------------------------------------------------- #
class TestStragglerDetection:
    def _workers(self, ages, *, alive=True):
        return {f"w{i}": {"alive": alive, "last_seen_age_s": age,
                          "done": 1, "lost": 0, "claims": 1}
                for i, age in enumerate(ages)}

    def test_stalled_worker_flagged_before_lease_expiry(self):
        ttl = 60.0
        workers = self._workers([1.0, 2.0, 40.0])
        flags = detect_stragglers(workers, ttl_s=ttl)
        assert list(flags) == ["w2"]
        # 40s is past half the TTL (the flag) but short of the TTL itself
        # (the lease is still active): early warning, not post-mortem.
        assert 40.0 < ttl
        assert "stalled" in flags["w2"][0]

    def test_exited_workers_never_flagged(self):
        workers = self._workers([500.0, 600.0], alive=False)
        assert detect_stragglers(workers, ttl_s=60.0) == {}

    def test_slow_worker_flagged_by_mad(self, tmp_path):
        clock = FakeClock()
        logs = [WorkerTelemetry(tmp_path, f"w{i}", clock=clock)
                for i in range(4)]
        for round_index in range(10):
            clock.advance(5.0)
            for worker_index, log in enumerate(logs):
                points = 1 if worker_index == 3 else 20
                log.emit("done", work=f"s{round_index}", points=points,
                         replayed=0, wall_s=1.0)
        timeline = fold_timeline(read_telemetry(tmp_path), bucket_s=5.0,
                                 until_t=clock.now())
        workers = {f"w{i}": {"alive": True, "last_seen_age_s": 0.0}
                   for i in range(4)}
        flags = detect_stragglers(workers, ttl_s=600.0, timeline=timeline)
        assert list(flags) == ["w3"]
        assert "slow" in flags["w3"][0]

    def test_uniform_fleet_not_flagged(self, tmp_path):
        clock = synthetic_fleet(tmp_path)
        timeline = fold_timeline(read_telemetry(tmp_path), bucket_s=5.0,
                                 until_t=clock.now())
        workers = {f"w{i}": {"alive": True, "last_seen_age_s": 0.0}
                   for i in range(3)}
        # w0/w1/w2 do 4/5/6 points per round -- a real spread, but within
        # the MAD floor; nobody deserves a flag.
        assert detect_stragglers(workers, ttl_s=600.0,
                                 timeline=timeline) == {}

    def test_small_fleets_skip_the_rate_test(self):
        workers = self._workers([0.0, 0.0])
        timeline = fold_timeline([])
        assert detect_stragglers(workers, ttl_s=60.0,
                                 timeline=timeline) == {}

    def test_bad_ttl_rejected(self):
        with pytest.raises(ValueError):
            detect_stragglers({}, ttl_s=0.0)


# --------------------------------------------------------------------------- #
class TestFleetMonitor:
    def test_snapshot_of_undispatched_store(self, tmp_path):
        clock = synthetic_fleet(tmp_path)
        monitor = FleetMonitor(tmp_path, clock=clock)
        try:
            snapshot = monitor.snapshot()
        finally:
            monitor.close()
        assert snapshot["ttl_s"] == DEFAULT_TTL_S
        assert sorted(snapshot["workers"]) == ["w0", "w1", "w2"]
        frame = render_top(snapshot)
        assert "workers (3):" in frame

    def test_snapshot_is_fake_clock_driven(self, tmp_path):
        clock = FakeClock()
        log = WorkerTelemetry(tmp_path, "w0", clock=clock)
        log.emit("worker_start", pid=1)
        clock.advance(1.0)
        log.emit("claim", work="s0")
        monitor = FleetMonitor(tmp_path, ttl_s=10.0, clock=clock)
        try:
            assert monitor.snapshot()["stragglers"] == {}
            clock.advance(6.0)  # past stall_fraction * ttl, before ttl
            flagged = monitor.snapshot()["stragglers"]
        finally:
            monitor.close()
        assert list(flagged) == ["w0"]
        assert "stalled" in flagged["w0"][0]


# --------------------------------------------------------------------------- #
class TestSparkline:
    def test_levels_and_scaling(self):
        assert ascii_sparkline([]) == ""
        assert ascii_sparkline([0, 0]) == "  "
        line = ascii_sparkline([0, 1, 5, 10])
        assert len(line) == 4
        assert line[0] == " "
        assert line[-1] == "@"

    def test_pure_ascii(self):
        line = ascii_sparkline(list(range(20)))
        assert all(ord(c) < 128 for c in line)

"""Unit tests for the design-space exploration toolflow."""

import pytest

from repro.apps import scaled_suite
from repro.toolflow import (
    ArchitectureConfig,
    figure6,
    figure7,
    figure8,
    run_experiment,
    run_gate_variants,
    sweep_capacity,
    sweep_microarchitecture,
    sweep_topologies,
)
from repro.toolflow.sweep import records_to_rows, select


@pytest.fixture(scope="module")
def mini_suite():
    """Two small applications keyed by canonical name (keeps sweeps fast)."""

    full = scaled_suite(10)
    return {"QFT": full["QFT"], "QAOA": full["QAOA"]}


class TestArchitectureConfig:
    def test_name(self):
        config = ArchitectureConfig(topology="G2x3", trap_capacity=18, gate="PM",
                                    reorder="IS")
        assert config.name == "G2x3-cap18-PM-IS"

    def test_num_traps(self):
        assert ArchitectureConfig(topology="L6").num_traps() == 6
        assert ArchitectureConfig(topology="G2x3").num_traps() == 6

    def test_build_device_sizes_for_circuit(self):
        config = ArchitectureConfig(topology="L6", trap_capacity=14)
        device = config.build_device(num_qubits=64)
        assert device.num_qubits == 64
        assert device.buffer_ions == 2

    def test_buffer_relaxed_when_needed(self):
        # 78 qubits on 6x14 traps requires shrinking the 2-slot buffer.
        config = ArchitectureConfig(topology="L6", trap_capacity=14)
        assert config.max_buffer_for(78) == 1
        device = config.build_device(num_qubits=78)
        assert device.buffer_ions == 1

    def test_impossible_fit_rejected(self):
        config = ArchitectureConfig(topology="L2", trap_capacity=10)
        with pytest.raises(ValueError):
            config.build_device(num_qubits=100)

    def test_with_updates(self):
        config = ArchitectureConfig().with_updates(gate="AM2", trap_capacity=30)
        assert config.gate == "AM2"
        assert config.trap_capacity == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(trap_capacity=1)
        with pytest.raises(ValueError):
            ArchitectureConfig(buffer_ions=-1)


class TestRunner:
    def test_run_experiment_record(self, qaoa8, small_config):
        record = run_experiment(qaoa8, small_config)
        assert 0.0 <= record.fidelity <= 1.0
        assert record.duration_seconds > 0.0
        assert record.program_size > 0
        row = record.as_row()
        assert row["application"] == qaoa8.name
        assert row["capacity"] == small_config.trap_capacity

    def test_run_gate_variants_shares_compilation(self, qft8, small_config):
        records = run_gate_variants(qft8, small_config, gates=("AM1", "FM"))
        assert set(records) == {"AM1", "FM"}
        assert records["AM1"].program_size == records["FM"].program_size
        assert records["AM1"].num_shuttles == records["FM"].num_shuttles
        assert records["AM1"].result.duration > records["FM"].result.duration

    def test_gate_variant_config_labels(self, qft8, small_config):
        records = run_gate_variants(qft8, small_config, gates=("PM",))
        assert records["PM"].config.gate == "PM"


class TestSweeps:
    def test_sweep_capacity(self, mini_suite):
        base = ArchitectureConfig(topology="L3")
        records = sweep_capacity(mini_suite, capacities=(6, 8), base=base)
        assert len(records) == 4
        capacities = {record.config.trap_capacity for record in records}
        assert capacities == {6, 8}

    def test_sweep_topologies(self, mini_suite):
        base = ArchitectureConfig()
        records = sweep_topologies(mini_suite, topologies=("L3", "G2x2"),
                                   capacities=(8,), base=base)
        assert len(records) == 4
        assert {record.config.topology for record in records} == {"L3", "G2x2"}

    def test_sweep_microarchitecture(self, mini_suite):
        base = ArchitectureConfig(topology="L3")
        records = sweep_microarchitecture(mini_suite, capacities=(8,),
                                          gates=("FM", "AM2"), reorders=("GS",),
                                          base=base)
        assert len(records) == 4

    def test_records_to_rows_and_select(self, mini_suite):
        base = ArchitectureConfig(topology="L3")
        records = sweep_capacity(mini_suite, capacities=(8,), base=base)
        rows = records_to_rows(records)
        assert len(rows) == len(records)
        chosen = select(records, capacity=8)
        assert len(chosen) == len(records)
        assert select(records, capacity=99) == []


class TestFigureHarnesses:
    def test_figure6_structure(self, mini_suite):
        bundle = figure6(mini_suite, capacities=(6, 8),
                         base=ArchitectureConfig(topology="L3"))
        assert bundle["capacities"] == [6, 8]
        assert set(bundle["runtime_s"]) == set(mini_suite)
        assert len(bundle["fidelity"]["QFT"]) == 2
        assert len(bundle["qft_breakdown"]["computation_s"]) == 2
        assert len(bundle["max_motional_energy"]["QAOA"]) == 2

    def test_figure7_structure(self, mini_suite):
        bundle = figure7(mini_suite, capacities=(8,), topologies=("L3", "G2x2"),
                         base=ArchitectureConfig())
        assert bundle["topologies"] == ["L3", "G2x2"]
        assert set(bundle["fidelity"]["QFT"]) == {"L3", "G2x2"}
        assert len(bundle["runtime_s"]["QAOA"]["L3"]) == 1

    def test_figure8_structure(self, mini_suite):
        bundle = figure8(mini_suite, capacities=(8,), gates=("FM", "AM2"),
                         reorders=("GS", "IS"), base=ArchitectureConfig(topology="L3"))
        assert set(bundle["combos"]) == {"FM-GS", "AM2-GS", "FM-IS", "AM2-IS"}
        for combo in bundle["combos"]:
            assert len(bundle["fidelity"]["QFT"][combo]) == 1
            assert len(bundle["runtime_s"]["QAOA"][combo]) == 1

"""Tests for the parallel sweep executor and the compiled-program cache."""

from __future__ import annotations

import pytest

from repro.io.fingerprint import result_fingerprint
from repro.toolflow import ArchitectureConfig, ProgramCache, SweepTask
from repro.toolflow.parallel import execute_task, flatten, run_tasks
from repro.toolflow.runner import run_experiment, run_gate_variants
from repro.toolflow.sweep import sweep_capacity, sweep_microarchitecture


def _record_identity(record):
    return (record.application, record.config, record.program_size,
            record.num_shuttles, result_fingerprint(record.result))


class TestProgramCache:
    def test_miss_then_hit(self, qft8, small_config):
        cache = ProgramCache()
        program_a, _ = cache.get_or_compile(qft8, small_config)
        program_b, _ = cache.get_or_compile(qft8, small_config)
        assert program_a is program_b
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_gate_not_part_of_key(self, qft8, small_config):
        """AM1/FM configs share one compilation; devices carry each gate."""

        cache = ProgramCache()
        program_a, device_a = cache.get_or_compile(qft8, small_config.with_updates(gate="AM1"))
        program_b, device_b = cache.get_or_compile(qft8, small_config.with_updates(gate="FM"))
        assert program_a is program_b
        assert cache.hits == 1 and cache.misses == 1
        assert device_a.gate.value == "AM1"
        assert device_b.gate.value == "FM"

    def test_compile_relevant_knobs_are_keyed(self, qft8, small_config):
        cache = ProgramCache()
        cache.get_or_compile(qft8, small_config)
        cache.get_or_compile(qft8, small_config.with_updates(trap_capacity=8))
        cache.get_or_compile(qft8, small_config.with_updates(reorder="IS"))
        assert cache.stats() == {"hits": 0, "misses": 3, "entries": 3}

    def test_hit_carries_requested_physical_model(self, qft8, small_config):
        """A cache hit must simulate under the *requested* model parameters.

        The model is excluded from the key (it never affects compilation),
        so the hit path has to swap it onto the returned device.
        """

        from dataclasses import replace

        hot_heating = replace(small_config.model.heating, k1=1.0)
        hot_config = small_config.with_updates(
            model=replace(small_config.model, heating=hot_heating))
        cache = ProgramCache()
        cold_direct = run_experiment(qft8, small_config)
        hot_direct = run_experiment(qft8, hot_config)
        cache.get_or_compile(qft8, small_config)  # prime with the cold model
        hot_cached = execute_task(SweepTask(qft8, hot_config), cache)[0]
        assert cache.hits == 1
        assert result_fingerprint(hot_cached.result) == result_fingerprint(hot_direct.result)
        assert result_fingerprint(hot_cached.result) != result_fingerprint(cold_direct.result)

    def test_cached_record_matches_direct_run(self, qft8, small_config):
        cache = ProgramCache()
        direct = run_experiment(qft8, small_config)
        cache.get_or_compile(qft8, small_config)  # prime
        via_cache = execute_task(SweepTask(qft8, small_config), cache)[0]
        assert cache.hits == 1
        assert _record_identity(direct) == _record_identity(via_cache)


class TestSweepTaskExecution:
    def test_single_point_matches_run_experiment(self, qaoa8, small_config):
        direct = run_experiment(qaoa8, small_config)
        via_task = execute_task(SweepTask(qaoa8, small_config), ProgramCache())[0]
        assert _record_identity(direct) == _record_identity(via_task)

    def test_gate_fanout_matches_run_gate_variants(self, qft8, small_config):
        gates = ("AM1", "PM", "FM")
        direct = list(run_gate_variants(qft8, small_config, gates=gates).values())
        via_task = execute_task(SweepTask(qft8, small_config, gates=gates),
                                ProgramCache())
        assert [_record_identity(r) for r in direct] == \
               [_record_identity(r) for r in via_task]


class TestRunTasks:
    @pytest.fixture
    def tasks(self, small_suite, small_config):
        return [
            SweepTask(circuit, small_config.with_updates(trap_capacity=capacity))
            for capacity in (6, 8)
            for circuit in small_suite.values()
        ]

    def test_serial_results_in_task_order(self, tasks):
        per_task = run_tasks(tasks, jobs=1)
        assert len(per_task) == len(tasks)
        for task, records in zip(tasks, per_task):
            assert len(records) == 1
            assert records[0].application == task.circuit.name
            assert records[0].config == task.config

    def test_parallel_equals_serial(self, tasks):
        serial = flatten(run_tasks(tasks, jobs=1))
        parallel = flatten(run_tasks(tasks, jobs=2))
        assert [_record_identity(r) for r in serial] == \
               [_record_identity(r) for r in parallel]

    def test_parallel_order_is_deterministic(self, tasks):
        first = flatten(run_tasks(tasks, jobs=2))
        second = flatten(run_tasks(tasks, jobs=3))
        assert [_record_identity(r) for r in first] == \
               [_record_identity(r) for r in second]

    def test_jobs_one_is_graceful_fallback(self, tasks):
        """jobs=1 never touches the process pool and honours a shared cache."""

        cache = ProgramCache()
        run_tasks(tasks, jobs=1, cache=cache)
        assert cache.misses == len(tasks)
        run_tasks(tasks, jobs=1, cache=cache)
        assert cache.hits == len(tasks)

    def test_invalid_jobs_rejected(self, tasks):
        with pytest.raises(ValueError):
            run_tasks(tasks, jobs=0)


class TestSweepIntegration:
    def test_sweep_capacity_parallel_equals_serial(self, small_suite):
        base = ArchitectureConfig(topology="L3", trap_capacity=6)
        serial = sweep_capacity(small_suite, capacities=(6, 8), base=base)
        parallel = sweep_capacity(small_suite, capacities=(6, 8), base=base, jobs=2)
        assert [_record_identity(r) for r in serial] == \
               [_record_identity(r) for r in parallel]

    def test_microarchitecture_cache_hit_counters(self, small_suite):
        """Each (app, capacity, reorder) compiles once; repeats hit the cache."""

        base = ArchitectureConfig(topology="L3", trap_capacity=6)
        cache = ProgramCache()
        sweep_microarchitecture(small_suite, capacities=(6,), gates=("AM1", "FM"),
                                reorders=("GS",), base=base, cache=cache)
        assert cache.stats() == {"hits": 0, "misses": len(small_suite),
                                 "entries": len(small_suite)}
        sweep_microarchitecture(small_suite, capacities=(6,), gates=("PM",),
                                reorders=("GS",), base=base, cache=cache)
        assert cache.stats() == {"hits": len(small_suite), "misses": len(small_suite),
                                 "entries": len(small_suite)}

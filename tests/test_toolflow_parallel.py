"""Tests for the parallel sweep executor and the compiled-program cache."""

from __future__ import annotations

import pytest

from repro.io.fingerprint import result_fingerprint
from repro.toolflow import ArchitectureConfig, ProgramCache, SweepTask
from repro.toolflow.parallel import execute_task, flatten, run_tasks
from repro.toolflow.runner import run_experiment, run_gate_variants
from repro.toolflow.sweep import sweep_capacity, sweep_microarchitecture


def _record_identity(record):
    return (record.application, record.config, record.program_size,
            record.num_shuttles, result_fingerprint(record.result))


def _stats(hits=0, misses=0, entries=0, batch_plans=0, batch_plan_reuses=0,
           batch_variants=0, batch_timelines=0, batch_timeline_hits=0):
    """Expected ``ProgramCache.stats()`` dictionary."""

    return {"hits": hits, "misses": misses, "entries": entries,
            "batch_plans": batch_plans, "batch_plan_reuses": batch_plan_reuses,
            "batch_variants": batch_variants, "batch_timelines": batch_timelines,
            "batch_timeline_hits": batch_timeline_hits}


class TestProgramCache:
    def test_miss_then_hit(self, qft8, small_config):
        cache = ProgramCache()
        program_a, _ = cache.get_or_compile(qft8, small_config)
        program_b, _ = cache.get_or_compile(qft8, small_config)
        assert program_a is program_b
        assert cache.stats() == _stats(hits=1, misses=1, entries=1)

    def test_gate_not_part_of_key(self, qft8, small_config):
        """AM1/FM configs share one compilation; devices carry each gate."""

        cache = ProgramCache()
        program_a, device_a = cache.get_or_compile(qft8, small_config.with_updates(gate="AM1"))
        program_b, device_b = cache.get_or_compile(qft8, small_config.with_updates(gate="FM"))
        assert program_a is program_b
        assert cache.hits == 1 and cache.misses == 1
        assert device_a.gate.value == "AM1"
        assert device_b.gate.value == "FM"

    def test_compile_relevant_knobs_are_keyed(self, qft8, small_config):
        cache = ProgramCache()
        cache.get_or_compile(qft8, small_config)
        cache.get_or_compile(qft8, small_config.with_updates(trap_capacity=8))
        cache.get_or_compile(qft8, small_config.with_updates(reorder="IS"))
        assert cache.stats() == _stats(misses=3, entries=3)

    def test_hit_carries_requested_physical_model(self, qft8, small_config):
        """A cache hit must simulate under the *requested* model parameters.

        The model is excluded from the key (it never affects compilation),
        so the hit path has to swap it onto the returned device.
        """

        from dataclasses import replace

        hot_heating = replace(small_config.model.heating, k1=1.0)
        hot_config = small_config.with_updates(
            model=replace(small_config.model, heating=hot_heating))
        cache = ProgramCache()
        cold_direct = run_experiment(qft8, small_config)
        hot_direct = run_experiment(qft8, hot_config)
        cache.get_or_compile(qft8, small_config)  # prime with the cold model
        hot_cached = execute_task(SweepTask(qft8, hot_config), cache)[0]
        assert cache.hits == 1
        assert result_fingerprint(hot_cached.result) == result_fingerprint(hot_direct.result)
        assert result_fingerprint(hot_cached.result) != result_fingerprint(cold_direct.result)

    def test_cached_record_matches_direct_run(self, qft8, small_config):
        cache = ProgramCache()
        direct = run_experiment(qft8, small_config)
        cache.get_or_compile(qft8, small_config)  # prime
        via_cache = execute_task(SweepTask(qft8, small_config), cache)[0]
        assert cache.hits == 1
        assert _record_identity(direct) == _record_identity(via_cache)


class TestSweepTaskExecution:
    def test_single_point_matches_run_experiment(self, qaoa8, small_config):
        direct = run_experiment(qaoa8, small_config)
        via_task = execute_task(SweepTask(qaoa8, small_config), ProgramCache())[0]
        assert _record_identity(direct) == _record_identity(via_task)

    def test_gate_fanout_matches_run_gate_variants(self, qft8, small_config):
        gates = ("AM1", "PM", "FM")
        direct = list(run_gate_variants(qft8, small_config, gates=gates).values())
        via_task = execute_task(SweepTask(qft8, small_config, gates=gates),
                                ProgramCache())
        assert [_record_identity(r) for r in direct] == \
               [_record_identity(r) for r in via_task]


class _FakeClock:
    """Deterministic ``perf_counter`` stand-in: each call advances by 1.0."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        value = self.now
        self.now += 1.0
        return value


class TestWallClockAccounting:
    """``wall_s`` must equal the record's compile share plus its sim share.

    The timing calls are replaced with a fake counter that advances one
    second per call, so each measured interval is exactly 1.0 and the
    apportioning arithmetic can be pinned without real-time flakiness.
    """

    def test_single_point_wall_is_compile_plus_sim(self, qft8, small_config,
                                                   monkeypatch):
        monkeypatch.setattr("repro.toolflow.parallel.perf_counter", _FakeClock())
        record = execute_task(SweepTask(qft8, small_config), ProgramCache())[0]
        # One interval for compile, one for simulate.
        assert record.wall_s == 2.0

    def test_single_point_wall_on_cache_hit(self, qft8, small_config,
                                            monkeypatch):
        cache = ProgramCache()
        cache.get_or_compile(qft8, small_config)  # prime: the task will hit
        monkeypatch.setattr("repro.toolflow.parallel.perf_counter", _FakeClock())
        record = execute_task(SweepTask(qft8, small_config), cache)[0]
        assert cache.hits == 1
        # Same accounting identity on the hit path; the compile interval now
        # times only the memo lookup.
        assert record.wall_s == 2.0

    def test_hit_path_is_cheaper_than_miss_path(self, qft8, small_config):
        """Real-clock sanity: a hit's wall_s drops the compile cost."""

        cache = ProgramCache()
        miss = execute_task(SweepTask(qft8, small_config), cache)[0]
        hit = execute_task(SweepTask(qft8, small_config), cache)[0]
        assert cache.stats()["hits"] == 1
        assert 0.0 < hit.wall_s <= miss.wall_s

    def test_batch_fanout_apportions_evenly(self, qft8, small_config,
                                            monkeypatch):
        monkeypatch.setattr("repro.toolflow.parallel.perf_counter", _FakeClock())
        gates = ("AM1", "AM2", "PM", "FM")
        records = execute_task(SweepTask(qft8, small_config, gates=gates),
                               ProgramCache())
        # compile interval 1.0 and one batch interval 1.0, each split 4 ways.
        assert [r.wall_s for r in records] == [0.5] * 4
        assert sum(r.wall_s for r in records) == 2.0

    def test_keep_timeline_fallback_times_each_variant(self, qft8, small_config,
                                                       monkeypatch):
        monkeypatch.setattr("repro.toolflow.parallel.perf_counter", _FakeClock())
        cache = ProgramCache()
        gates = ("AM1", "FM")
        records = execute_task(
            SweepTask(qft8, small_config, gates=gates, keep_timeline=True), cache)
        # Serial fallback: each variant gets its own 1.0 sim interval plus
        # half of the 1.0 compile interval.
        assert [r.wall_s for r in records] == [1.5, 1.5]
        assert all(r.result.timeline is not None for r in records)
        # The fallback must not be counted as batch work.
        assert cache.stats()["batch_variants"] == 0


class TestBatchCounters:
    def test_gate_fanout_counts_batch_activity(self, qft8, small_config):
        cache = ProgramCache()
        gates = ("AM1", "AM2", "PM", "FM")
        execute_task(SweepTask(qft8, small_config, gates=gates), cache)
        stats = cache.stats()
        assert stats["batch_plans"] == 1
        assert stats["batch_variants"] == 4
        # Every timeline walk is either built fresh or deduped.
        assert stats["batch_timelines"] + stats["batch_timeline_hits"] == 4
        assert stats["batch_timelines"] >= 1

    def test_plan_reused_across_tasks(self, qft8, small_config):
        cache = ProgramCache()
        task = SweepTask(qft8, small_config, gates=("AM1", "FM"))
        execute_task(task, cache)
        execute_task(task, cache)
        stats = cache.stats()
        assert stats["batch_plans"] == 1
        assert stats["batch_plan_reuses"] == 1
        assert stats["batch_variants"] == 4
        # Second task's timelines come entirely from the plan's dedup cache.
        assert stats["batch_timelines"] == 2
        assert stats["batch_timeline_hits"] == 2

    def test_pool_workers_merge_counters(self, small_suite, small_config):
        """jobs>1 folds worker cache/batch deltas into the caller's cache."""

        tasks = [SweepTask(circuit, small_config, gates=("AM1", "FM"))
                 for circuit in small_suite.values()]
        parent = ProgramCache()
        run_tasks(tasks, jobs=2, cache=parent)
        stats = parent.stats()
        # Distinct programs: each compiles exactly once in whichever worker.
        assert stats["misses"] == len(tasks)
        assert stats["hits"] == 0
        assert stats["entries"] == 0  # memos stay process-local
        assert stats["batch_plans"] == len(tasks)
        assert stats["batch_variants"] == 2 * len(tasks)
        # AM1 and FM duration vectors never collide.
        assert stats["batch_timelines"] == 2 * len(tasks)


class TestRunTasks:
    @pytest.fixture
    def tasks(self, small_suite, small_config):
        return [
            SweepTask(circuit, small_config.with_updates(trap_capacity=capacity))
            for capacity in (6, 8)
            for circuit in small_suite.values()
        ]

    def test_serial_results_in_task_order(self, tasks):
        per_task = run_tasks(tasks, jobs=1)
        assert len(per_task) == len(tasks)
        for task, records in zip(tasks, per_task):
            assert len(records) == 1
            assert records[0].application == task.circuit.name
            assert records[0].config == task.config

    def test_parallel_equals_serial(self, tasks):
        serial = flatten(run_tasks(tasks, jobs=1))
        parallel = flatten(run_tasks(tasks, jobs=2))
        assert [_record_identity(r) for r in serial] == \
               [_record_identity(r) for r in parallel]

    def test_parallel_order_is_deterministic(self, tasks):
        first = flatten(run_tasks(tasks, jobs=2))
        second = flatten(run_tasks(tasks, jobs=3))
        assert [_record_identity(r) for r in first] == \
               [_record_identity(r) for r in second]

    def test_jobs_one_is_graceful_fallback(self, tasks):
        """jobs=1 never touches the process pool and honours a shared cache."""

        cache = ProgramCache()
        run_tasks(tasks, jobs=1, cache=cache)
        assert cache.misses == len(tasks)
        run_tasks(tasks, jobs=1, cache=cache)
        assert cache.hits == len(tasks)

    def test_invalid_jobs_rejected(self, tasks):
        with pytest.raises(ValueError):
            run_tasks(tasks, jobs=0)


class TestSweepIntegration:
    def test_sweep_capacity_parallel_equals_serial(self, small_suite):
        base = ArchitectureConfig(topology="L3", trap_capacity=6)
        serial = sweep_capacity(small_suite, capacities=(6, 8), base=base)
        parallel = sweep_capacity(small_suite, capacities=(6, 8), base=base, jobs=2)
        assert [_record_identity(r) for r in serial] == \
               [_record_identity(r) for r in parallel]

    def test_microarchitecture_cache_hit_counters(self, small_suite):
        """Each (app, capacity, reorder) compiles once; repeats hit the cache."""

        base = ArchitectureConfig(topology="L3", trap_capacity=6)
        cache = ProgramCache()
        sweep_microarchitecture(small_suite, capacities=(6,), gates=("AM1", "FM"),
                                reorders=("GS",), base=base, cache=cache)
        # Each app's 2-gate fan-out runs through the batch engine: one plan,
        # two variants, two distinct duration vectors (AM1 vs FM never
        # collide), no timeline dedup within the pair.
        assert cache.stats() == _stats(
            misses=len(small_suite), entries=len(small_suite),
            batch_plans=len(small_suite), batch_variants=2 * len(small_suite),
            batch_timelines=2 * len(small_suite))
        sweep_microarchitecture(small_suite, capacities=(6,), gates=("PM",),
                                reorders=("GS",), base=base, cache=cache)
        # Single-gate points are not folded into a gates tuple, so the second
        # sweep takes the serial path: cache hits, no new batch activity.
        assert cache.stats() == _stats(
            hits=len(small_suite), misses=len(small_suite),
            entries=len(small_suite),
            batch_plans=len(small_suite), batch_variants=2 * len(small_suite),
            batch_timelines=2 * len(small_suite))

"""Unit tests for text rendering and the single-trap baseline."""

import pytest

from repro.apps import qft_circuit
from repro.baselines import simulate_single_trap, single_trap_sweep
from repro.hardware import build_device
from repro.toolflow import ArchitectureConfig, run_experiment
from repro.visualize import (
    ascii_bar_chart,
    ascii_line_chart,
    device_report,
    experiment_report,
)


class TestAsciiCharts:
    def test_line_chart_contains_legend(self):
        chart = ascii_line_chart([1, 2, 3], {"QFT": [0.1, 0.2, 0.3], "BV": [0.9, 0.9, 0.8]},
                                 title="fidelity")
        assert "fidelity" in chart
        assert "o=QFT" in chart
        assert "x=BV" in chart

    def test_line_chart_handles_empty(self):
        assert "(no data)" in ascii_line_chart([], {})
        assert "(no data)" in ascii_line_chart([1], {"A": []})

    def test_line_chart_constant_series(self):
        chart = ascii_line_chart([1, 2], {"flat": [0.5, 0.5]})
        assert "flat" in chart

    def test_bar_chart(self):
        chart = ascii_bar_chart({"L6": 0.5, "G2x3": 1.0}, title="ratio")
        assert "ratio" in chart
        assert chart.count("#") > 0

    def test_bar_chart_empty(self):
        assert "(no data)" in ascii_bar_chart({})

    def test_bar_chart_zero_values(self):
        chart = ascii_bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart


class TestReports:
    def test_device_report(self):
        device = build_device("G2x3", trap_capacity=15, num_qubits=60)
        report = device_report(device)
        assert "T5" in report
        assert "J1" in report
        assert "Segments" in report

    def test_experiment_report(self, qaoa8, small_config):
        record = run_experiment(qaoa8, small_config)
        report = experiment_report([record])
        assert qaoa8.name in report
        assert "L3" in report

    def test_experiment_report_empty(self):
        assert experiment_report([]) == "(no experiments)"


class TestSingleTrapBaseline:
    def test_no_communication(self):
        result = simulate_single_trap(qft_circuit(8), gate="FM")
        assert result.num_shuttles == 0
        assert result.communication_time == 0.0
        assert result.max_motional_energy == 0.0

    def test_fidelity_degrades_with_size(self):
        small = simulate_single_trap(qft_circuit(8))
        large = simulate_single_trap(qft_circuit(24))
        assert large.fidelity < small.fidelity

    def test_am1_slower_than_fm_for_long_chains(self):
        fm = simulate_single_trap(qft_circuit(16), gate="FM")
        am1 = simulate_single_trap(qft_circuit(16), gate="AM1")
        assert am1.duration > fm.duration

    def test_sweep(self):
        results = single_trap_sweep(qft_circuit, sizes=(4, 8, 12))
        assert len(results) == 3
        assert results[0].fidelity >= results[-1].fidelity

    def test_gate_count_matches_circuit(self):
        circuit = qft_circuit(6)
        result = simulate_single_trap(circuit)
        assert result.num_ms_gates == circuit.num_two_qubit_gates

    def test_laser_instability_scales_with_chain(self):
        """Per-gate error grows with the chain length (the motivation for
        keeping traps small; Section III.A)."""

        small = simulate_single_trap(qft_circuit(8))
        large = simulate_single_trap(qft_circuit(32))
        assert large.mean_motional_error > small.mean_motional_error
